package oracle

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"time"
	"unsafe"

	"rings/internal/distlabel"
	"rings/internal/metric"
	"rings/internal/workload"
)

// Snapshot file magics. v1 framed codec-rounded wire labels behind a
// JSON header; v2 is the flat arena bytes behind a checksummed header,
// so a warm start is an mmap (or one bulk read) plus validation instead
// of a per-label decode. ReadSnapshot accepts both (v1 converts through
// the old decode path); WriteTo always emits v2.
const (
	persistMagicV1 = "RINGSNAP1\n"
	persistMagicV2 = "RINGSNAP2\n"
)

// crcTable is the checksum polynomial of the v2 format (CRC-64/ECMA).
var crcTable = crc64.MakeTable(crc64.ECMA)

// persistHeader is the v1 JSON header, kept for reading v1 files.
type persistHeader struct {
	Config    Config    `json:"config"`
	Name      string    `json:"name"`
	N         int       `json:"n"`
	Capacity  int       `json:"capacity,omitempty"`
	Perm      []int32   `json:"perm,omitempty"`
	LabelMeta LabelMeta `json:"label_meta"`
	// Labels reports how many label blocks follow (0 under beacons).
	Labels int `json:"labels"`
}

// persistHeaderV2 is the v2 JSON header: workload identity for the
// deterministic rebuild of derived artifacts, plus the arena section
// directory and checksums that make the payload self-describing and
// corruption-evident. Endian records the writer's byte order — the
// payload is raw host-order arrays; a reader on the other byte order
// gets a clear versioned error instead of silently misparsed data.
type persistHeaderV2 struct {
	Config     Config        `json:"config"`
	Name       string        `json:"name"`
	N          int           `json:"n"`
	Capacity   int           `json:"capacity,omitempty"`
	Perm       []int32       `json:"perm,omitempty"`
	LabelMeta  LabelMeta     `json:"label_meta"`
	Scheme     string        `json:"scheme"`
	Endian     string        `json:"endian"`
	Sections   []flatSection `json:"sections"`
	PayloadLen int64         `json:"payload_len"`
	PayloadCRC uint64        `json:"payload_crc64"`
}

// hostEndian reports this machine's byte order as a header string.
func hostEndian() string {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) == 1 {
		return "little"
	}
	return "big"
}

// v2HeaderPrefix is the fixed-size framing after the magic: u32 header
// length plus u64 header CRC, little-endian (framing integers are
// always little-endian; only the arena payload is host-order).
const v2HeaderPrefix = 4 + 8

// v2PayloadOffset computes the 8-aligned payload offset for a given
// header length (padding bytes are zero).
func v2PayloadOffset(hdrLen int) int64 {
	end := int64(len(persistMagicV2)) + v2HeaderPrefix + int64(hdrLen)
	return (end + 7) &^ 7
}

// WriteTo serializes the snapshot in the v2 format: a checksummed JSON
// header followed by the flat arena bytes exactly as served from
// memory. A loader validates the checksum and serves straight from the
// bytes (mmap or one bulk read) — no per-label decode, no codec
// rounding: a restored snapshot answers bit-identical estimates.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	start := time.Now()
	n, err := s.writeToV2(w)
	mPersistTotal.Inc()
	if err != nil {
		mPersistErrors.Inc()
	} else {
		mPersistUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	}
	return n, err
}

func (s *Snapshot) writeToV2(w io.Writer) (int64, error) {
	if s.Flat == nil {
		return 0, fmt.Errorf("oracle: snapshot has no flat arenas to persist")
	}
	hdr := persistHeaderV2{
		Config:     s.Config,
		Name:       s.Name,
		N:          s.N(),
		Capacity:   s.Capacity,
		Perm:       s.Perm,
		LabelMeta:  s.LabelMeta,
		Scheme:     s.Flat.scheme,
		Endian:     hostEndian(),
		Sections:   s.Flat.sections,
		PayloadLen: int64(len(s.Flat.buf)),
		PayloadCRC: crc64.Checksum(s.Flat.buf, crcTable),
	}
	hdrBuf, err := json.Marshal(hdr)
	if err != nil {
		return 0, err
	}
	bw := &countingWriter{w: w}
	if _, err := bw.Write([]byte(persistMagicV2)); err != nil {
		return bw.n, err
	}
	var prefix [v2HeaderPrefix]byte
	binary.LittleEndian.PutUint32(prefix[0:4], uint32(len(hdrBuf)))
	binary.LittleEndian.PutUint64(prefix[4:12], crc64.Checksum(hdrBuf, crcTable))
	if _, err := bw.Write(prefix[:]); err != nil {
		return bw.n, err
	}
	if _, err := bw.Write(hdrBuf); err != nil {
		return bw.n, err
	}
	if pad := v2PayloadOffset(len(hdrBuf)) - bw.n; pad > 0 {
		var zeros [8]byte
		if _, err := bw.Write(zeros[:pad]); err != nil {
			return bw.n, err
		}
	}
	if _, err := bw.Write(s.Flat.buf); err != nil {
		return bw.n, err
	}
	return bw.n, nil
}

// WriteLegacyV1 serializes the snapshot in the retired v1 format
// (uvarint-framed codec-rounded wire labels). Kept callable so the
// format-migration tests and the serve benchmark's warm-start
// comparison can produce real v1 files; production persistence always
// writes v2.
func (s *Snapshot) WriteLegacyV1(w io.Writer) (int64, error) {
	bw := &countingWriter{w: w}
	writeUvarint := func(v uint64) error {
		var tmp [binary.MaxVarintLen64]byte
		_, err := bw.Write(tmp[:binary.PutUvarint(tmp[:], v)])
		return err
	}
	if _, err := bw.Write([]byte(persistMagicV1)); err != nil {
		return bw.n, err
	}
	hdr := persistHeader{
		Config:    s.Config,
		Name:      s.Name,
		N:         s.N(),
		Capacity:  s.Capacity,
		Perm:      s.Perm,
		LabelMeta: s.LabelMeta,
		Labels:    len(s.Labels),
	}
	hdrBuf, err := json.Marshal(hdr)
	if err != nil {
		return bw.n, err
	}
	if err := writeUvarint(uint64(len(hdrBuf))); err != nil {
		return bw.n, err
	}
	if _, err := bw.Write(hdrBuf); err != nil {
		return bw.n, err
	}
	if len(s.Labels) == 0 {
		return bw.n, nil
	}
	wire, err := s.LabelWire()
	if err != nil {
		return bw.n, err
	}
	for u, lab := range s.Labels {
		buf, bits, err := wire.Encode(lab)
		if err != nil {
			return bw.n, fmt.Errorf("oracle: encode label %d: %w", u, err)
		}
		if err := writeUvarint(uint64(bits)); err != nil {
			return bw.n, err
		}
		if _, err := bw.Write(buf); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// ReadSnapshot restores a full snapshot from WriteTo's format (v2) or
// the legacy v1 format: the workload view is regenerated from the
// header, derived artifacts (index, triangulation, overlay, router)
// are rebuilt deterministically, and the estimator payload is taken
// from the file — arena bytes under v2, codec-rounded wire labels
// under v1 (the conversion path). For the O(1) serve-immediately open,
// see OpenSnapshotFile.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	start := time.Now()
	snap, err := readSnapshotAny(r)
	if err != nil {
		mOpenErrors.Inc()
		return nil, err
	}
	mOpenTotal.With(openModeRestore).Inc()
	mOpenUs.With(openModeRestore).Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return snap, nil
}

func readSnapshotAny(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagicV1))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("oracle: snapshot magic: %w", err)
	}
	switch string(magic) {
	case persistMagicV1:
		return readSnapshotV1(br)
	case persistMagicV2:
		return readSnapshotV2(br)
	default:
		return nil, fmt.Errorf("oracle: not a snapshot file (magic %q)", magic)
	}
}

// readV2Envelope reads and validates everything after the v2 magic:
// header, padding, checksummed payload (into an 8-aligned heap buffer).
func readV2Envelope(br io.Reader) (persistHeaderV2, []byte, error) {
	var hdr persistHeaderV2
	var prefix [v2HeaderPrefix]byte
	if _, err := io.ReadFull(br, prefix[:]); err != nil {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header frame: %w", err)
	}
	hdrLen := int(binary.LittleEndian.Uint32(prefix[0:4]))
	hdrCRC := binary.LittleEndian.Uint64(prefix[4:12])
	if hdrLen <= 0 || hdrLen > 1<<26 {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header length %d out of range", hdrLen)
	}
	hdrBuf := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrBuf); err != nil {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header: %w", err)
	}
	if got := crc64.Checksum(hdrBuf, crcTable); got != hdrCRC {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header checksum mismatch (got %016x, want %016x)", got, hdrCRC)
	}
	if err := json.Unmarshal(hdrBuf, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header: %w", err)
	}
	if hdr.Endian != hostEndian() {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 written on a %s-endian host, this host is %s-endian (re-export the snapshot on a matching host)", hdr.Endian, hostEndian())
	}
	if hdr.PayloadLen < 0 {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 payload length %d out of range", hdr.PayloadLen)
	}
	pad := v2PayloadOffset(hdrLen) - int64(len(persistMagicV2)) - v2HeaderPrefix - int64(hdrLen)
	if pad > 0 {
		var zeros [8]byte
		if _, err := io.ReadFull(br, zeros[:pad]); err != nil {
			return hdr, nil, fmt.Errorf("oracle: snapshot v2 padding: %w", err)
		}
	}
	payload := alignedBytes(int(hdr.PayloadLen))
	if _, err := io.ReadFull(br, payload); err != nil {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 payload: %w", err)
	}
	if got := crc64.Checksum(payload, crcTable); got != hdr.PayloadCRC {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 payload checksum mismatch (got %016x, want %016x)", got, hdr.PayloadCRC)
	}
	return hdr, payload, nil
}

// restoreSpace regenerates the workload view a header describes (the
// full base space, or a churned subset through Perm).
func restoreSpace(cfg Config, hdrName string, perm []int32, capacity, n int) (metric.Space, string, error) {
	var space metric.Space
	name := hdrName
	if perm != nil {
		spec := cfg.spec()
		base, _, err := workload.ChurnBase(spec, capacity)
		if err != nil {
			return nil, "", err
		}
		for _, b := range perm {
			if int(b) < 0 || int(b) >= base.N() {
				return nil, "", fmt.Errorf("oracle: perm references base node %d of %d", b, base.N())
			}
		}
		space = metric.NewSubspace(base, perm)
	} else {
		var err error
		space, name, err = cfg.spec().Space()
		if err != nil {
			return nil, "", err
		}
		if hdrName != "" {
			name = hdrName
		}
	}
	if space.N() != n {
		return nil, "", fmt.Errorf("oracle: restored space has %d nodes, header says %d", space.N(), n)
	}
	return space, name, nil
}

// readSnapshotV2 is the full-restore read of a v2 stream (after the
// magic): validate the envelope, bind the arenas, materialize pointer
// labels from them, and rebuild every derived artifact. The restored
// snapshot keeps the file's exact arena bytes as its flat form, so a
// re-write reproduces the file bit for bit.
func readSnapshotV2(br io.Reader) (*Snapshot, error) {
	hdr, payload, err := readV2Envelope(br)
	if err != nil {
		return nil, err
	}
	flat, err := flatFromSections(hdr.N, hdr.Scheme, payload, hdr.Sections, nil)
	if err != nil {
		return nil, err
	}
	cfg := hdr.Config.withDefaults()
	space, name, err := restoreSpace(cfg, hdr.Name, hdr.Perm, hdr.Capacity, hdr.N)
	if err != nil {
		return nil, err
	}
	var preLabels labelSource
	if hdr.Scheme == SchemeLabels {
		preLabels = func(idx metric.BallIndex) ([]*distlabel.Label, LabelMeta, error) {
			return flat.materializeLabels(), hdr.LabelMeta, nil
		}
	}
	snap, err := buildSnapshotOver(cfg, space, name, preLabels)
	if err != nil {
		return nil, err
	}
	snap.Perm = hdr.Perm
	snap.Capacity = hdr.Capacity
	// Serve (and re-persist) the file's own arena bytes rather than the
	// repack of the materialized labels; the two are identical by the
	// canonical layout, but keeping the originals makes the write →
	// read → write byte-identity structural instead of incidental.
	snap.Flat = flat
	return snap, nil
}

// ReadSnapshotOver restores a full snapshot from a v2 stream over a
// caller-supplied space — the warm-boot path for snapshots whose space
// is not regenerable from their own Config, i.e. fleet shards built
// over subspaces of a shared global workload (the shard's header knows
// its node count and labels but not the partition; the fleet
// regenerates base space and partition deterministically and hands
// each shard its subspace here). Only v2 files are accepted: per-shard
// persistence postdates the v1 format.
func ReadSnapshotOver(r io.Reader, space metric.Space, name string) (*Snapshot, error) {
	return ReadSnapshotFor(r, name, func([]int32, int) (metric.Space, error) {
		return space, nil
	})
}

// ReadSnapshotFor is ReadSnapshotOver with the space resolved from the
// stream's own membership header: spaceOf receives the header's Perm
// (nil for a static subspace) and node count and returns the matching
// space. This is the replica-shipping path — under churn every shipped
// snapshot carries a different membership, so a receiver cannot fix the
// space up front the way a warm boot can.
func ReadSnapshotFor(r io.Reader, name string, spaceOf func(perm []int32, n int) (metric.Space, error)) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagicV2))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("oracle: snapshot magic: %w", err)
	}
	if string(magic) != persistMagicV2 {
		return nil, fmt.Errorf("oracle: not a v2 snapshot file (magic %q; per-shard snapshots require the v2 format)", magic)
	}
	hdr, payload, err := readV2Envelope(br)
	if err != nil {
		return nil, err
	}
	space, err := spaceOf(hdr.Perm, hdr.N)
	if err != nil {
		return nil, err
	}
	if hdr.N != space.N() {
		return nil, fmt.Errorf("oracle: snapshot holds %d nodes, supplied space has %d", hdr.N, space.N())
	}
	flat, err := flatFromSections(hdr.N, hdr.Scheme, payload, hdr.Sections, nil)
	if err != nil {
		return nil, err
	}
	cfg := hdr.Config.withDefaults()
	var preLabels labelSource
	if hdr.Scheme == SchemeLabels {
		preLabels = func(idx metric.BallIndex) ([]*distlabel.Label, LabelMeta, error) {
			return flat.materializeLabels(), hdr.LabelMeta, nil
		}
	}
	if name == "" {
		name = hdr.Name
	}
	snap, err := buildSnapshotOver(cfg, space, name, preLabels)
	if err != nil {
		return nil, err
	}
	snap.Perm = hdr.Perm
	snap.Capacity = hdr.Capacity
	snap.Flat = flat
	return snap, nil
}

// OpenSnapshotFile opens a snapshot file for serving in O(header): a v2
// file is mmapped (falling back to one bulk read where mmap is
// unavailable), its checksums validated, and the returned snapshot
// serves estimates directly from the file-backed arenas — no label
// decode, no derived-artifact rebuild. The result is flat-only: Idx,
// Labels, Overlay and Router are nil until the caller hydrates a full
// snapshot (ReadSnapshot) and swaps it in; Nearest/Route return their
// usual sentinel errors meanwhile. A v1 file falls back to the full
// ReadSnapshot conversion. Callers must Close the returned snapshot
// once it has been swapped out of every engine.
func OpenSnapshotFile(path string) (*Snapshot, error) {
	start := time.Now()
	snap, mode, err := openSnapshotFile(path)
	if err != nil {
		mOpenErrors.Inc()
		return nil, err
	}
	mOpenTotal.With(mode).Inc()
	mOpenUs.With(mode).Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return snap, nil
}

// openSnapshotFile is OpenSnapshotFile minus the telemetry: it reports
// which mode answered (mmap, read fallback, or restore for v1 files).
func openSnapshotFile(path string) (*Snapshot, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	magic := make([]byte, len(persistMagicV2))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, "", fmt.Errorf("oracle: snapshot magic: %w", err)
	}
	switch string(magic) {
	case persistMagicV1:
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, "", err
		}
		snap, err := readSnapshotAny(f)
		return snap, openModeRestore, err
	case persistMagicV2:
	default:
		return nil, "", fmt.Errorf("oracle: not a snapshot file (magic %q)", magic)
	}

	var (
		hdr     persistHeaderV2
		payload []byte
		m       *mapping
	)
	if mmapSupported {
		if mapped, merr := mmapFile(f); merr == nil {
			data := mapped.bytes()
			hdr, payload, err = sliceV2Envelope(data)
			if err != nil {
				mapped.close()
				return nil, "", err
			}
			m = mapped
		}
	}
	mode := openModeMmap
	if m == nil {
		mode = openModeRead
		// Copying fallback: same validation, arena bytes in one aligned
		// heap buffer.
		if _, err := f.Seek(int64(len(persistMagicV2)), io.SeekStart); err != nil {
			return nil, "", err
		}
		hdr, payload, err = readV2Envelope(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			return nil, "", err
		}
	}
	flat, err := flatFromSections(hdr.N, hdr.Scheme, payload, hdr.Sections, m)
	if err != nil {
		return nil, "", err
	}
	cfg := hdr.Config.withDefaults()
	return &Snapshot{
		Config:    cfg,
		Name:      hdr.Name,
		LabelMeta: hdr.LabelMeta,
		Perm:      hdr.Perm,
		Capacity:  hdr.Capacity,
		Flat:      flat,
		n:         hdr.N,
	}, mode, nil
}

// sliceV2Envelope validates a v2 file presented as one byte slice (the
// mmap window) and returns the header plus the payload subslice —
// zero-copy: the arenas are views straight into the mapping.
func sliceV2Envelope(data []byte) (persistHeaderV2, []byte, error) {
	var hdr persistHeaderV2
	base := int64(len(persistMagicV2))
	if int64(len(data)) < base+v2HeaderPrefix {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header frame: %w", io.ErrUnexpectedEOF)
	}
	hdrLen := int(binary.LittleEndian.Uint32(data[base : base+4]))
	hdrCRC := binary.LittleEndian.Uint64(data[base+4 : base+12])
	if hdrLen <= 0 || hdrLen > 1<<26 || base+v2HeaderPrefix+int64(hdrLen) > int64(len(data)) {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header length %d out of range", hdrLen)
	}
	hdrBuf := data[base+v2HeaderPrefix : base+v2HeaderPrefix+int64(hdrLen)]
	if got := crc64.Checksum(hdrBuf, crcTable); got != hdrCRC {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header checksum mismatch (got %016x, want %016x)", got, hdrCRC)
	}
	if err := json.Unmarshal(hdrBuf, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 header: %w", err)
	}
	if hdr.Endian != hostEndian() {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 written on a %s-endian host, this host is %s-endian (re-export the snapshot on a matching host)", hdr.Endian, hostEndian())
	}
	off := v2PayloadOffset(hdrLen)
	if hdr.PayloadLen < 0 || off+hdr.PayloadLen > int64(len(data)) {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 payload: %w", io.ErrUnexpectedEOF)
	}
	payload := data[off : off+hdr.PayloadLen : off+hdr.PayloadLen]
	if got := crc64.Checksum(payload, crcTable); got != hdr.PayloadCRC {
		return hdr, nil, fmt.Errorf("oracle: snapshot v2 payload checksum mismatch (got %016x, want %016x)", got, hdr.PayloadCRC)
	}
	return hdr, payload, nil
}

// readSnapshotV1 restores a legacy v1 stream (after the magic): decode
// the codec-rounded wire labels and rebuild everything else. Kept so
// pre-v2 snapshot files keep warm-starting (they convert: the next
// persist writes v2).
func readSnapshotV1(br *bufio.Reader) (*Snapshot, error) {
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	hdrBuf := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrBuf); err != nil {
		return nil, err
	}
	var hdr persistHeader
	if err := json.Unmarshal(hdrBuf, &hdr); err != nil {
		return nil, fmt.Errorf("oracle: snapshot header: %w", err)
	}

	cfg := hdr.Config.withDefaults()
	space, name, err := restoreSpace(cfg, hdr.Name, hdr.Perm, hdr.Capacity, hdr.N)
	if err != nil {
		return nil, err
	}

	var preLabels labelSource
	if hdr.Labels > 0 {
		if hdr.Labels != hdr.N {
			return nil, fmt.Errorf("oracle: %d label blocks for %d nodes", hdr.Labels, hdr.N)
		}
		blocks := make([][]byte, hdr.Labels)
		bits := make([]int, hdr.Labels)
		for u := 0; u < hdr.Labels; u++ {
			b, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("oracle: label %d frame: %w", u, err)
			}
			bits[u] = int(b)
			blocks[u] = make([]byte, (b+7)/8)
			if _, err := io.ReadFull(br, blocks[u]); err != nil {
				return nil, fmt.Errorf("oracle: label %d: %w", u, err)
			}
		}
		preLabels = func(idx metric.BallIndex) ([]*distlabel.Label, LabelMeta, error) {
			wire, err := wireFor(idx, cfg, hdr.LabelMeta)
			if err != nil {
				return nil, LabelMeta{}, err
			}
			labels := make([]*distlabel.Label, hdr.Labels)
			for u := range labels {
				lab, err := wire.Decode(blocks[u], bits[u])
				if err != nil {
					return nil, LabelMeta{}, fmt.Errorf("oracle: decode label %d: %w", u, err)
				}
				labels[u] = lab
			}
			return labels, hdr.LabelMeta, nil
		}
	}
	snap, err := buildSnapshotOver(cfg, space, name, preLabels)
	if err != nil {
		return nil, err
	}
	snap.Perm = hdr.Perm
	snap.Capacity = hdr.Capacity
	return snap, nil
}

// wireFor mirrors Snapshot.LabelWire for a not-yet-assembled snapshot.
func wireFor(idx metric.BallIndex, cfg Config, meta LabelMeta) (distlabel.Wire, error) {
	tmp := &Snapshot{Config: cfg, Idx: idx, LabelMeta: meta, Labels: []*distlabel.Label{}}
	return tmp.LabelWire()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
