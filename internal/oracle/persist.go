package oracle

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"rings/internal/distlabel"
	"rings/internal/metric"
	"rings/internal/workload"
)

// persistMagic versions the snapshot file format.
const persistMagic = "RINGSNAP1\n"

// persistHeader is the JSON header of a snapshot file: everything a
// loader needs to regenerate the workload view and decode the label
// blocks. Derived artifacts (index, triangulation, overlay, router) are
// deliberately not serialized — they rebuild deterministically from the
// config, and the label build they replace is the phase that dominates
// cold-start time.
type persistHeader struct {
	Config    Config    `json:"config"`
	Name      string    `json:"name"`
	N         int       `json:"n"`
	Capacity  int       `json:"capacity,omitempty"`
	Perm      []int32   `json:"perm,omitempty"`
	LabelMeta LabelMeta `json:"label_meta"`
	// Labels reports how many label blocks follow (0 under beacons).
	Labels int `json:"labels"`
}

// WriteTo serializes the snapshot: a JSON header plus, under
// SchemeLabels, one wire-encoded label block per node (the
// distlabel.Wire codec — the same bits the byte-identity property tests
// hash). Distances inside labels go through the codec's
// mantissa/exponent rounding, so a loaded snapshot answers estimates in
// wire semantics: the (1+δ) upper bound survives (slightly loosened),
// the lower bound degrades per the codec's documented contract.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: w}
	if _, err := bw.Write([]byte(persistMagic)); err != nil {
		return bw.n, err
	}
	hdr := persistHeader{
		Config:    s.Config,
		Name:      s.Name,
		N:         s.N(),
		Capacity:  s.Capacity,
		Perm:      s.Perm,
		LabelMeta: s.LabelMeta,
		Labels:    len(s.Labels),
	}
	hdrBuf, err := json.Marshal(hdr)
	if err != nil {
		return bw.n, err
	}
	if err := writeUvarint(bw, uint64(len(hdrBuf))); err != nil {
		return bw.n, err
	}
	if _, err := bw.Write(hdrBuf); err != nil {
		return bw.n, err
	}
	if len(s.Labels) == 0 {
		return bw.n, nil
	}
	wire, err := s.LabelWire()
	if err != nil {
		return bw.n, err
	}
	for u, lab := range s.Labels {
		buf, bits, err := wire.Encode(lab)
		if err != nil {
			return bw.n, fmt.Errorf("oracle: encode label %d: %w", u, err)
		}
		if err := writeUvarint(bw, uint64(bits)); err != nil {
			return bw.n, err
		}
		if _, err := bw.Write(buf); err != nil {
			return bw.n, err
		}
	}
	return bw.n, nil
}

// ReadSnapshot restores a snapshot from WriteTo's format: the workload
// view is regenerated from the header (including a churned node subset
// via Perm), every derived artifact is rebuilt deterministically, and
// the labels are decoded from their wire blocks instead of being
// rebuilt — the warm start skips the dominant build phase.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("oracle: snapshot magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("oracle: not a snapshot file (magic %q)", magic)
	}
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	hdrBuf := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrBuf); err != nil {
		return nil, err
	}
	var hdr persistHeader
	if err := json.Unmarshal(hdrBuf, &hdr); err != nil {
		return nil, fmt.Errorf("oracle: snapshot header: %w", err)
	}

	cfg := hdr.Config.withDefaults()
	var space metric.Space
	name := hdr.Name
	if hdr.Perm != nil {
		spec := cfg.spec()
		base, _, err := workload.ChurnBase(spec, hdr.Capacity)
		if err != nil {
			return nil, err
		}
		for _, b := range hdr.Perm {
			if int(b) < 0 || int(b) >= base.N() {
				return nil, fmt.Errorf("oracle: perm references base node %d of %d", b, base.N())
			}
		}
		space = metric.NewSubspace(base, hdr.Perm)
	} else {
		var err error
		space, name, err = cfg.spec().Space()
		if err != nil {
			return nil, err
		}
		if hdr.Name != "" {
			name = hdr.Name
		}
	}
	if space.N() != hdr.N {
		return nil, fmt.Errorf("oracle: restored space has %d nodes, header says %d", space.N(), hdr.N)
	}

	var preLabels labelSource
	if hdr.Labels > 0 {
		if hdr.Labels != hdr.N {
			return nil, fmt.Errorf("oracle: %d label blocks for %d nodes", hdr.Labels, hdr.N)
		}
		blocks := make([][]byte, hdr.Labels)
		bits := make([]int, hdr.Labels)
		for u := 0; u < hdr.Labels; u++ {
			b, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("oracle: label %d frame: %w", u, err)
			}
			bits[u] = int(b)
			blocks[u] = make([]byte, (b+7)/8)
			if _, err := io.ReadFull(br, blocks[u]); err != nil {
				return nil, fmt.Errorf("oracle: label %d: %w", u, err)
			}
		}
		preLabels = func(idx metric.BallIndex) ([]*distlabel.Label, LabelMeta, error) {
			wire, err := wireFor(idx, cfg, hdr.LabelMeta)
			if err != nil {
				return nil, LabelMeta{}, err
			}
			labels := make([]*distlabel.Label, hdr.Labels)
			for u := range labels {
				lab, err := wire.Decode(blocks[u], bits[u])
				if err != nil {
					return nil, LabelMeta{}, fmt.Errorf("oracle: decode label %d: %w", u, err)
				}
				labels[u] = lab
			}
			return labels, hdr.LabelMeta, nil
		}
	}
	snap, err := buildSnapshotOver(cfg, space, name, preLabels)
	if err != nil {
		return nil, err
	}
	snap.Perm = hdr.Perm
	snap.Capacity = hdr.Capacity
	return snap, nil
}

// wireFor mirrors Snapshot.LabelWire for a not-yet-assembled snapshot.
func wireFor(idx metric.BallIndex, cfg Config, meta LabelMeta) (distlabel.Wire, error) {
	tmp := &Snapshot{Config: cfg, Idx: idx, LabelMeta: meta, Labels: []*distlabel.Label{}}
	return tmp.LabelWire()
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}
