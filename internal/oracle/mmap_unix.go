//go:build unix

package oracle

import (
	"os"
	"syscall"
)

// mmapSupported reports whether zero-copy snapshot opens are available
// on this platform.
const mmapSupported = true

// mapping is one read-only mmap window over a snapshot file. FlatSnap's
// refcount owns it: the last unpin (or the creation-reference release
// after the last reader drains) unmaps.
type mapping struct {
	data []byte
}

// mmapFile maps the whole file read-only, shared — co-located replicas
// warm-starting from the same snapshot file share one physical copy via
// the page cache.
func mmapFile(f *os.File) (*mapping, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 || int64(int(size)) != size {
		return nil, syscall.EINVAL
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) bytes() []byte { return m.data }

func (m *mapping) close() {
	if m.data != nil {
		_ = syscall.Munmap(m.data)
		m.data = nil
	}
}
