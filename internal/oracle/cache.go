package oracle

import (
	"sync"
	"sync/atomic"
)

// shardedCache memoizes estimate results under per-shard locks so
// concurrent clients rarely contend. A cache belongs to exactly one
// snapshot (the Engine replaces the cache together with the snapshot on
// Swap), so entries can never outlive the artifacts that produced them
// and never need invalidation.
type shardedCache struct {
	shards    []cacheShard
	capacity  int // per shard; <= 0 disables the cache entirely
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	// metrics mirrors events into the owning engine's cumulative
	// counters (the per-era atomics above reset with each Swap; the
	// exposition counters must stay monotone). Nil outside an engine.
	metrics *engineMetrics
}

type cacheShard struct {
	mu sync.Mutex
	m  map[uint64]EstimateResult
}

// newCache creates a cache with the given shard count (rounded up to a
// power of two) and per-shard capacity.
func newCache(shards, capacity int, metrics *engineMetrics) *shardedCache {
	if shards < 1 {
		shards = 1
	}
	pow := 1
	for pow < shards {
		pow <<= 1
	}
	c := &shardedCache{shards: make([]cacheShard, pow), capacity: capacity, metrics: metrics}
	if capacity > 0 {
		for i := range c.shards {
			c.shards[i].m = make(map[uint64]EstimateResult)
		}
	}
	return c
}

// pairKey is the ordered pair (u, v); order is preserved so a cached
// answer is bit-for-bit the answer a direct call with the same argument
// order would produce.
func pairKey(u, v int) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// splitmix64 scrambles the key so shard selection is uniform even for
// the sequential node ids real query streams use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (c *shardedCache) shard(key uint64) *cacheShard {
	return &c.shards[splitmix64(key)&uint64(len(c.shards)-1)]
}

// get returns the cached result for (u, v), counting the hit or miss.
func (c *shardedCache) get(u, v int) (EstimateResult, bool) {
	if c.capacity <= 0 {
		c.miss()
		return EstimateResult{}, false
	}
	key := pairKey(u, v)
	s := c.shard(key)
	s.mu.Lock()
	res, ok := s.m[key]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		if c.metrics != nil {
			c.metrics.cacheHits.Inc()
		}
	} else {
		c.miss()
	}
	return res, ok
}

func (c *shardedCache) miss() {
	c.misses.Add(1)
	if c.metrics != nil {
		c.metrics.cacheMisses.Inc()
	}
}

// put stores a result, evicting an arbitrary entry when the shard is at
// capacity.
func (c *shardedCache) put(u, v int, res EstimateResult) {
	if c.capacity <= 0 {
		return
	}
	key := pairKey(u, v)
	s := c.shard(key)
	s.mu.Lock()
	if _, exists := s.m[key]; !exists && len(s.m) >= c.capacity {
		for k := range s.m {
			delete(s.m, k)
			c.evictions.Add(1)
			if c.metrics != nil {
				c.metrics.cacheEvicts.Inc()
			}
			break
		}
	}
	s.m[key] = res
	s.mu.Unlock()
}

// size reports the total number of cached entries.
func (c *shardedCache) size() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// CacheStats reports one cache's counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Shards    int   `json:"shards"`
	Capacity  int   `json:"capacity_per_shard"`
}

func (c *shardedCache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.size(),
		Shards:    len(c.shards),
		Capacity:  c.capacity,
	}
}
