package oracle

import (
	"errors"
	"fmt"
	"time"

	"rings/internal/bitio"
	"rings/internal/distlabel"
	"rings/internal/metric"
	"rings/internal/nnsearch"
	"rings/internal/routing"
	"rings/internal/triangulation"
)

// ErrNoOverlay is returned by Nearest when the snapshot was built with
// SkipOverlay.
var ErrNoOverlay = errors.New("oracle: snapshot has no nearest-neighbor overlay")

// ErrNoRouter is returned by Route when the snapshot was built with
// SkipRouting.
var ErrNoRouter = errors.New("oracle: snapshot has no routing scheme")

// ErrNodeRange marks a query naming a node id outside [0, N()) — under
// membership churn a client's id range can lag a shrink swap, and the
// serving layer distinguishes that expected race from other bad input
// by this sentinel (HTTP surfaces map it to a machine-readable code).
var ErrNodeRange = errors.New("node id out of range")

// Snapshot is one immutable serving unit: a workload plus every artifact
// built over it. All methods are pure reads — a Snapshot may be shared
// by any number of goroutines, which is what makes the Engine's
// lock-free reads sound. Fields are exported for inspection (and for
// tests comparing engine answers against direct construction calls);
// they must not be mutated after BuildSnapshot returns.
type Snapshot struct {
	// Config is the build recipe (defaults applied).
	Config Config
	// Name is the canonical workload instance name.
	Name string
	// Version is assigned by Engine.Swap when the snapshot is installed;
	// 0 means never installed.
	Version int64
	// Idx is the ball index over the workload's space.
	Idx metric.BallIndex
	// Tri is the Theorem 3.2 triangulation (always built; it shares its
	// construction with the labels).
	Tri *triangulation.Triangulation
	// Scheme and Labels are the Theorem 3.4 labeling (both nil under
	// SchemeBeacons). Labels alone answers estimates; Scheme is the full
	// build-side object and is nil on snapshots whose labels were
	// repaired incrementally (churn) or decoded from disk (warm start) —
	// when present, Labels[u] == Scheme.Label(u).
	Scheme *distlabel.Scheme
	Labels []*distlabel.Label
	// Overlay is the Meridian-style ring overlay (nil under SkipOverlay).
	Overlay *nnsearch.Overlay
	// Router is the Theorem 2.1 metric routing scheme (nil under
	// SkipRouting).
	Router routing.Scheme
	// BuildElapsed is how long BuildSnapshot took.
	BuildElapsed time.Duration
	// Build is the per-phase build breakdown (what /snapshot and /stats
	// report, and what cmd/ringbench's BENCH_build.json tracks).
	Build BuildStats
	// Perm, when non-nil, records that this snapshot serves a churned
	// subset of a capacity-sized base workload: node u of the snapshot is
	// base node Perm[u] of the workload generated with N = Capacity.
	// Spec-built snapshots leave it nil. Persistence uses it to restore
	// the exact surviving node set on warm start.
	Perm []int32
	// Capacity is the base-workload size behind Perm (0 when Perm is nil).
	Capacity int

	// LabelMeta carries the scheme-wide label constants (zero under
	// SchemeBeacons). It exists so snapshots whose labels did not come
	// from a live *distlabel.Scheme — churn deltas, warm starts — can
	// still derive a Wire codec.
	LabelMeta LabelMeta

	// Flat is the arena-packed serving form of the estimator (labels or
	// beacon sets). Every assembled snapshot carries it; the Engine's
	// hot path reads it instead of the pointer structures, and the v2
	// persisted format is exactly its bytes. A snapshot opened via
	// OpenSnapshotFile may carry ONLY Flat (plus config/meta): estimates
	// work immediately, Nearest/Route/Idx-dependent calls need hydration.
	Flat *FlatSnap

	// n caches the node count so flat-only snapshots (Idx == nil) can
	// bounds-check queries.
	n int

	entry     int // overlay entry member (smallest member id)
	nearHops  int
	routeHops int
}

// Close releases the snapshot's hold on an mmap-backed flat arena (a
// no-op for heap-backed snapshots, which the GC owns). Call it only
// after the snapshot has been swapped out of every engine: in-flight
// readers that pinned the arena keep it mapped until they drain, and
// new readers reload the engine state instead of touching it.
func (s *Snapshot) Close() {
	if s != nil && s.Flat != nil {
		s.Flat.release()
	}
}

// LabelMeta are the scheme-wide constants a distlabel.Wire needs.
type LabelMeta struct {
	IMax        int `json:"imax"`
	MaxT        int `json:"max_t"`
	Level0Count int `json:"level0_count"`
}

// LabelWire derives the serialization context of the snapshot's labels
// — the same context Scheme.Wire would return for the scheme that
// (conceptually) produced them. It errors under SchemeBeacons.
func (s *Snapshot) LabelWire() (distlabel.Wire, error) {
	if s.Labels == nil {
		return distlabel.Wire{}, fmt.Errorf("oracle: snapshot has no labels to serialize")
	}
	codec, err := bitio.NewDistCodec(s.Idx.MinDistance(), s.Idx.Diameter(), s.Config.Delta/6)
	if err != nil {
		return distlabel.Wire{}, err
	}
	return distlabel.Wire{
		IMax:        s.LabelMeta.IMax,
		MaxT:        s.LabelMeta.MaxT,
		Level0Count: s.LabelMeta.Level0Count,
		Codec:       codec,
	}, nil
}

// setOverlay installs the overlay plus its derived query parameters.
func (s *Snapshot) setOverlay(overlay *nnsearch.Overlay) {
	s.Overlay = overlay
	s.entry = overlay.Members()[0]
	// The climb strictly decreases the distance over a finite member
	// set, so |members|+1 hops always suffice.
	s.nearHops = len(overlay.Members()) + 1
}

// setRouter installs the router plus the per-route hop budget.
func (s *Snapshot) setRouter(router routing.Scheme, routeHops int) {
	s.Router = router
	s.routeHops = routeHops
	if s.routeHops <= 0 {
		s.routeHops = 80 * s.Idx.N()
	}
}

// Artifacts is the prebuilt-parts input of AssembleSnapshot.
type Artifacts struct {
	Idx     metric.BallIndex
	Tri     *triangulation.Triangulation
	Scheme  *distlabel.Scheme
	Labels  []*distlabel.Label
	Overlay *nnsearch.Overlay
	Router  routing.Scheme
	// LabelMeta must be set when Labels is (see Snapshot.LabelMeta).
	LabelMeta LabelMeta
	// Perm/Capacity identify a churned node subset (see Snapshot.Perm).
	Perm     []int32
	Capacity int
}

// AssembleSnapshot wraps externally built artifacts into a Snapshot,
// deriving the same query parameters (overlay entry, hop budgets)
// BuildSnapshot would, and packing the flat serving arenas. It is the
// commit path of the churn engine — which repairs artifacts
// incrementally and must still publish an ordinary, immutable Snapshot
// — and of the persistence warm start, which decodes labels and
// rebuilds the rest.
func AssembleSnapshot(cfg Config, name string, a Artifacts, elapsed time.Duration, build BuildStats) *Snapshot {
	cfg = cfg.withDefaults()
	snap := &Snapshot{
		Config:       cfg,
		Name:         name,
		Idx:          a.Idx,
		Tri:          a.Tri,
		Scheme:       a.Scheme,
		Labels:       a.Labels,
		LabelMeta:    a.LabelMeta,
		Perm:         a.Perm,
		Capacity:     a.Capacity,
		BuildElapsed: elapsed,
		Build:        build,
	}
	if a.Idx != nil {
		snap.n = a.Idx.N()
	}
	if a.Overlay != nil {
		snap.setOverlay(a.Overlay)
	}
	if a.Router != nil {
		snap.setRouter(a.Router, cfg.RouteHops)
	}
	// The pack is a linear copy of the label/beacon payload — cheap next
	// to any build or repair that produced the artifacts. Packing at
	// every assembly (including churn delta commits) keeps the invariant
	// that a served snapshot always has its flat form and its v2
	// persisted form available.
	if flat, err := newFlatForSnapshot(snap); err == nil {
		snap.Flat = flat
	}
	return snap
}

// BuildStats is the per-phase wall-clock breakdown of one BuildSnapshot
// call, in seconds (JSON-friendly). Phases that were skipped or not
// applicable are zero. The label sub-phases sum to at most
// LabelsTotalSec (which wraps the whole scheme build); TotalSec is
// wall-clock of the whole build, which is less than the sum of phases
// when independent artifacts built concurrently.
type BuildStats struct {
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Profile  string `json:"profile"`
	Workers  int    `json:"workers"`

	IndexSec    float64 `json:"index_sec"`
	NetsSec     float64 `json:"nets_sec"`
	RadiiSec    float64 `json:"radii_sec"`
	PackingsSec float64 `json:"packings_sec"`
	RingsSec    float64 `json:"rings_sec"`

	TriangulationSec float64 `json:"triangulation_sec"`
	VerifySec        float64 `json:"verify_sec"`

	ZSetsSec       float64 `json:"zsets_sec"`
	TSetsSec       float64 `json:"tsets_sec"`
	HostEnumsSec   float64 `json:"host_enums_sec"`
	LabelFillSec   float64 `json:"label_fill_sec"`
	LabelsTotalSec float64 `json:"labels_total_sec"`

	OverlaySec float64 `json:"overlay_sec"`
	RouterSec  float64 `json:"router_sec"`
	TotalSec   float64 `json:"total_sec"`
}

// N reports the node count of the snapshot's space (available even on
// flat-only snapshots, which carry no ball index).
func (s *Snapshot) N() int {
	if s.Idx != nil {
		return s.Idx.N()
	}
	return s.n
}

// EstimateResult is one distance estimate. Lower and Upper sandwich the
// true distance; Upper is the (1+δ)-approximate estimate.
type EstimateResult struct {
	U       int     `json:"u"`
	V       int     `json:"v"`
	Lower   float64 `json:"lower"`
	Upper   float64 `json:"upper"`
	OK      bool    `json:"ok"`
	Version int64   `json:"version"`
	// Cached reports whether the Engine answered from its cache (always
	// false on direct Snapshot calls).
	Cached bool `json:"cached"`
}

// NearestResult is one nearest-member query.
type NearestResult struct {
	Target  int     `json:"target"`
	Member  int     `json:"member"`
	Dist    float64 `json:"dist"`
	Hops    int     `json:"hops"`
	Path    []int   `json:"path"`
	Version int64   `json:"version"`
}

// RouteResult is one simulated packet route.
type RouteResult struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Path    []int   `json:"path"`
	Length  float64 `json:"length"`
	Dist    float64 `json:"dist"`
	Stretch float64 `json:"stretch"`
	Hops    int     `json:"hops"`
	Version int64   `json:"version"`
}

func (s *Snapshot) checkNode(kind string, u int) error {
	if u < 0 || u >= s.N() {
		return fmt.Errorf("oracle: %s node %d out of range [0, %d): %w", kind, u, s.N(), ErrNodeRange)
	}
	return nil
}

// Estimate answers one distance estimate directly from the snapshot's
// estimator, bypassing any cache: under SchemeLabels it is exactly
// distlabel.Estimate(Labels[u], Labels[v]); under SchemeBeacons exactly
// Tri.Estimate(u, v). Flat-only snapshots (OpenSnapshotFile) answer
// from the arenas — bit-identical to the pointer path by construction.
func (s *Snapshot) Estimate(u, v int) (EstimateResult, error) {
	if err := s.checkNode("estimate", u); err != nil {
		return EstimateResult{}, err
	}
	if err := s.checkNode("estimate", v); err != nil {
		return EstimateResult{}, err
	}
	res := EstimateResult{U: u, V: v, Version: s.Version}
	switch {
	case s.Labels != nil:
		res.Lower, res.Upper, res.OK = distlabel.Estimate(s.Labels[u], s.Labels[v])
	case s.Tri != nil:
		res.Lower, res.Upper, res.OK = s.Tri.Estimate(u, v)
	default:
		res.Lower, res.Upper, res.OK = s.Flat.estimatePair(u, v)
	}
	return res, nil
}

// Nearest runs the Meridian climb from the snapshot's fixed entry member
// toward target; the answer is exactly
// Overlay.NearestMember(entry, target, hops) for the snapshot's entry
// and hop budget.
func (s *Snapshot) Nearest(target int) (NearestResult, error) {
	if s.Overlay == nil {
		return NearestResult{}, ErrNoOverlay
	}
	if err := s.checkNode("nearest", target); err != nil {
		return NearestResult{}, err
	}
	r, err := s.Overlay.NearestMember(s.entry, target, s.nearHops)
	if err != nil {
		return NearestResult{}, err
	}
	return NearestResult{
		Target:  target,
		Member:  r.Member,
		Dist:    r.Dist,
		Hops:    r.Hops,
		Path:    r.Path,
		Version: s.Version,
	}, nil
}

// Route simulates one packet under the snapshot's routing scheme and
// reports the realized stretch.
func (s *Snapshot) Route(src, dst int) (RouteResult, error) {
	if s.Router == nil {
		return RouteResult{}, ErrNoRouter
	}
	if err := s.checkNode("route", src); err != nil {
		return RouteResult{}, err
	}
	if err := s.checkNode("route", dst); err != nil {
		return RouteResult{}, err
	}
	r, err := routing.Route(s.Router, src, dst, s.routeHops)
	if err != nil {
		return RouteResult{}, err
	}
	res := RouteResult{
		Src:     src,
		Dst:     dst,
		Path:    r.Path,
		Length:  r.Length,
		Hops:    r.Hops,
		Stretch: 1,
		Version: s.Version,
	}
	if d := s.Idx.Dist(src, dst); d > 0 {
		res.Dist = d
		res.Stretch = r.Length / d
	}
	return res, nil
}
