package oracle

import (
	"errors"
	"fmt"
	"time"

	"rings/internal/distlabel"
	"rings/internal/metric"
	"rings/internal/nnsearch"
	"rings/internal/routing"
	"rings/internal/triangulation"
)

// ErrNoOverlay is returned by Nearest when the snapshot was built with
// SkipOverlay.
var ErrNoOverlay = errors.New("oracle: snapshot has no nearest-neighbor overlay")

// ErrNoRouter is returned by Route when the snapshot was built with
// SkipRouting.
var ErrNoRouter = errors.New("oracle: snapshot has no routing scheme")

// Snapshot is one immutable serving unit: a workload plus every artifact
// built over it. All methods are pure reads — a Snapshot may be shared
// by any number of goroutines, which is what makes the Engine's
// lock-free reads sound. Fields are exported for inspection (and for
// tests comparing engine answers against direct construction calls);
// they must not be mutated after BuildSnapshot returns.
type Snapshot struct {
	// Config is the build recipe (defaults applied).
	Config Config
	// Name is the canonical workload instance name.
	Name string
	// Version is assigned by Engine.Swap when the snapshot is installed;
	// 0 means never installed.
	Version int64
	// Idx is the ball index over the workload's space.
	Idx metric.BallIndex
	// Tri is the Theorem 3.2 triangulation (always built; it shares its
	// construction with the labels).
	Tri *triangulation.Triangulation
	// Scheme and Labels are the Theorem 3.4 labeling (nil under
	// SchemeBeacons). Labels[u] == Scheme.Label(u).
	Scheme *distlabel.Scheme
	Labels []*distlabel.Label
	// Overlay is the Meridian-style ring overlay (nil under SkipOverlay).
	Overlay *nnsearch.Overlay
	// Router is the Theorem 2.1 metric routing scheme (nil under
	// SkipRouting).
	Router routing.Scheme
	// BuildElapsed is how long BuildSnapshot took.
	BuildElapsed time.Duration
	// Build is the per-phase build breakdown (what /snapshot and /stats
	// report, and what cmd/ringbench's BENCH_build.json tracks).
	Build BuildStats

	entry     int // overlay entry member (smallest member id)
	nearHops  int
	routeHops int
}

// BuildStats is the per-phase wall-clock breakdown of one BuildSnapshot
// call, in seconds (JSON-friendly). Phases that were skipped or not
// applicable are zero. The label sub-phases sum to at most
// LabelsTotalSec (which wraps the whole scheme build); TotalSec is
// wall-clock of the whole build, which is less than the sum of phases
// when independent artifacts built concurrently.
type BuildStats struct {
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Profile  string `json:"profile"`
	Workers  int    `json:"workers"`

	IndexSec    float64 `json:"index_sec"`
	NetsSec     float64 `json:"nets_sec"`
	RadiiSec    float64 `json:"radii_sec"`
	PackingsSec float64 `json:"packings_sec"`
	RingsSec    float64 `json:"rings_sec"`

	TriangulationSec float64 `json:"triangulation_sec"`
	VerifySec        float64 `json:"verify_sec"`

	ZSetsSec       float64 `json:"zsets_sec"`
	TSetsSec       float64 `json:"tsets_sec"`
	HostEnumsSec   float64 `json:"host_enums_sec"`
	LabelFillSec   float64 `json:"label_fill_sec"`
	LabelsTotalSec float64 `json:"labels_total_sec"`

	OverlaySec float64 `json:"overlay_sec"`
	RouterSec  float64 `json:"router_sec"`
	TotalSec   float64 `json:"total_sec"`
}

// N reports the node count of the snapshot's space.
func (s *Snapshot) N() int { return s.Idx.N() }

// EstimateResult is one distance estimate. Lower and Upper sandwich the
// true distance; Upper is the (1+δ)-approximate estimate.
type EstimateResult struct {
	U       int     `json:"u"`
	V       int     `json:"v"`
	Lower   float64 `json:"lower"`
	Upper   float64 `json:"upper"`
	OK      bool    `json:"ok"`
	Version int64   `json:"version"`
	// Cached reports whether the Engine answered from its cache (always
	// false on direct Snapshot calls).
	Cached bool `json:"cached"`
}

// NearestResult is one nearest-member query.
type NearestResult struct {
	Target  int     `json:"target"`
	Member  int     `json:"member"`
	Dist    float64 `json:"dist"`
	Hops    int     `json:"hops"`
	Path    []int   `json:"path"`
	Version int64   `json:"version"`
}

// RouteResult is one simulated packet route.
type RouteResult struct {
	Src     int     `json:"src"`
	Dst     int     `json:"dst"`
	Path    []int   `json:"path"`
	Length  float64 `json:"length"`
	Dist    float64 `json:"dist"`
	Stretch float64 `json:"stretch"`
	Hops    int     `json:"hops"`
	Version int64   `json:"version"`
}

func (s *Snapshot) checkNode(kind string, u int) error {
	if u < 0 || u >= s.Idx.N() {
		return fmt.Errorf("oracle: %s node %d out of range [0, %d)", kind, u, s.Idx.N())
	}
	return nil
}

// Estimate answers one distance estimate directly from the snapshot's
// estimator, bypassing any cache: under SchemeLabels it is exactly
// distlabel.Estimate(Labels[u], Labels[v]); under SchemeBeacons exactly
// Tri.Estimate(u, v).
func (s *Snapshot) Estimate(u, v int) (EstimateResult, error) {
	if err := s.checkNode("estimate", u); err != nil {
		return EstimateResult{}, err
	}
	if err := s.checkNode("estimate", v); err != nil {
		return EstimateResult{}, err
	}
	res := EstimateResult{U: u, V: v, Version: s.Version}
	if s.Labels != nil {
		res.Lower, res.Upper, res.OK = distlabel.Estimate(s.Labels[u], s.Labels[v])
	} else {
		res.Lower, res.Upper, res.OK = s.Tri.Estimate(u, v)
	}
	return res, nil
}

// Nearest runs the Meridian climb from the snapshot's fixed entry member
// toward target; the answer is exactly
// Overlay.NearestMember(entry, target, hops) for the snapshot's entry
// and hop budget.
func (s *Snapshot) Nearest(target int) (NearestResult, error) {
	if s.Overlay == nil {
		return NearestResult{}, ErrNoOverlay
	}
	if err := s.checkNode("nearest", target); err != nil {
		return NearestResult{}, err
	}
	r, err := s.Overlay.NearestMember(s.entry, target, s.nearHops)
	if err != nil {
		return NearestResult{}, err
	}
	return NearestResult{
		Target:  target,
		Member:  r.Member,
		Dist:    r.Dist,
		Hops:    r.Hops,
		Path:    r.Path,
		Version: s.Version,
	}, nil
}

// Route simulates one packet under the snapshot's routing scheme and
// reports the realized stretch.
func (s *Snapshot) Route(src, dst int) (RouteResult, error) {
	if s.Router == nil {
		return RouteResult{}, ErrNoRouter
	}
	if err := s.checkNode("route", src); err != nil {
		return RouteResult{}, err
	}
	if err := s.checkNode("route", dst); err != nil {
		return RouteResult{}, err
	}
	r, err := routing.Route(s.Router, src, dst, s.routeHops)
	if err != nil {
		return RouteResult{}, err
	}
	res := RouteResult{
		Src:     src,
		Dst:     dst,
		Path:    r.Path,
		Length:  r.Length,
		Hops:    r.Hops,
		Stretch: 1,
		Version: s.Version,
	}
	if d := s.Idx.Dist(src, dst); d > 0 {
		res.Dist = d
		res.Stretch = r.Length / d
	}
	return res, nil
}
