package oracle

import "math"

// ulpGuardFlat mirrors distlabel's and triangulation's lower-bound
// discount; the flat path must fold exactly the same arithmetic.
const ulpGuardFlat = 1e-13

// flatAcc accumulates one estimate: the running sandwich fold. It lives
// on the caller's stack; the whole flat estimate path performs zero heap
// allocations.
type flatAcc struct {
	lower, upper float64
	ok           bool
}

// consider folds one common-neighbor candidate: hu indexes u's stored
// distances, hv indexes v's. Bit-identical to distlabel.Estimate's
// consider closure.
//
//ringvet:hotpath
func (a *flatAcc) consider(f *FlatSnap, uOff, vOff int32, lenU, lenV, hu, hv int) {
	if hu < 0 || hv < 0 || hu >= lenU || hv >= lenV {
		return
	}
	a.ok = true
	da, db := f.dists[int(uOff)+hu], f.dists[int(vOff)+hv]
	if s := da + db; s < a.upper {
		a.upper = s
	}
	if g := math.Abs(da-db) - ulpGuardFlat*math.Max(da, db); g > a.lower {
		a.lower = g
	}
}

// estimatePair answers one pair from the flat arenas. Node ids must be
// in range (the callers bounds-check). The answer is bit-identical to
// distlabel.Estimate on the labels the arenas were packed from (or to
// Tri.Estimate under SchemeBeacons).
//
//ringvet:hotpath
func (f *FlatSnap) estimatePair(u, v int) (lower, upper float64, ok bool) {
	if f.scheme == SchemeBeacons {
		return f.estimateBeacons(u, v)
	}
	a := flatAcc{upper: math.Inf(1)}

	uOff, vOff := f.distOff[u], f.distOff[v]
	lenU, lenV := int(f.distOff[u+1]-uOff), int(f.distOff[v+1]-vOff)

	// Shared level-0 prefix: identical node, identical index, in every
	// label of the scheme.
	for h := 0; h < int(f.l0[u]) && h < lenU && h < lenV; h++ {
		a.consider(f, uOff, vOff, lenU, lenV, h, h)
	}

	f.walk(&a, u, v, false, uOff, vOff, lenU, lenV)
	f.walk(&a, v, u, true, uOff, vOff, lenU, lenV)
	return a.lower, a.upper, a.ok
}

// walk mirrors distlabel.Estimate's zooming walk over the flat layout:
// follow mine's zooming sequence, tracking the current element's host
// index on both sides, harvesting every commonly-translatable virtual
// neighbor at each level. swap flips the (mine, other) orientation back
// to (u, v) for the distance fold.
//
//ringvet:hotpath
func (f *FlatSnap) walk(a *flatAcc, mine, other int, swap bool, uOff, vOff int32, lenU, lenV int) {
	// Invariant: (am, bo) are the host indices of the current zoom
	// element in mine resp. other.
	am := int(f.zoom0[mine])
	bo := am // shared prefix: same index both sides
	f.consider2(a, swap, uOff, vOff, lenU, lenV, am, bo)
	psiStart := int(f.psiOff[mine])
	lenPsi := int(f.psiOff[mine+1]) - psiStart
	gMine := int(f.levOff[mine])
	gOther := int(f.levOff[other])
	lenTransOther := int(f.levOff[other+1]) - gOther
	for i := 0; i < lenPsi; i++ {
		if i >= lenTransOther {
			return
		}
		f.harvest(a, swap, uOff, vOff, lenU, lenV, gMine+i, gOther+i, int32(am), int32(bo))
		y := f.psi[psiStart+i]
		na := f.lookup(gMine+i, int32(am), y)
		nb := f.lookup(gOther+i, int32(bo), y)
		if na < 0 || nb < 0 {
			return
		}
		am, bo = na, nb
		f.consider2(a, swap, uOff, vOff, lenU, lenV, am, bo)
	}
}

// consider2 folds a (mine-host, other-host) pair, restoring (u, v)
// orientation.
//
//ringvet:hotpath
func (f *FlatSnap) consider2(a *flatAcc, swap bool, uOff, vOff int32, lenU, lenV, x, y int) {
	if swap {
		x, y = y, x
	}
	a.consider(f, uOff, vOff, lenU, lenV, x, y)
}

// lookup finds the Z of the entry with virtual index y under key x in
// group g (binary search over the sorted x keys, then over the Y-sorted
// pairs), or -1.
//
//ringvet:hotpath
func (f *FlatSnap) lookup(g int, x, y int32) int {
	k := f.findKey(g, x)
	if k < 0 {
		return -1
	}
	lo, hi := int(f.entOff[k]), int(f.entOff[k+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.ents[2*mid] < y {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(f.entOff[k+1]) && f.ents[2*lo] == y {
		return int(f.ents[2*lo+1])
	}
	return -1
}

// findKey locates key x in group g's sorted key range, returning the
// global key slot or -1.
//
//ringvet:hotpath
func (f *FlatSnap) findKey(g int, x int32) int {
	lo, hi := int(f.xkOff[g]), int(f.xkOff[g+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.xkeys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(f.xkOff[g+1]) && f.xkeys[lo] == x {
		return lo
	}
	return -1
}

// harvest intersects the Y-sorted entry spans of the same physical node
// (key xa in group ga, key xb in group gb) and folds each commonly
// translatable virtual neighbor — the same ascending-Y two-pointer merge
// as distlabel's harvest, so the fold order matches exactly.
//
//ringvet:hotpath
func (f *FlatSnap) harvest(a *flatAcc, swap bool, uOff, vOff int32, lenU, lenV, ga, gb int, xa, xb int32) {
	ka := f.findKey(ga, xa)
	kb := f.findKey(gb, xb)
	var ia, ea, ib, eb int
	if ka >= 0 {
		ia, ea = int(f.entOff[ka]), int(f.entOff[ka+1])
	}
	if kb >= 0 {
		ib, eb = int(f.entOff[kb]), int(f.entOff[kb+1])
	}
	for ia < ea && ib < eb {
		ya, yb := f.ents[2*ia], f.ents[2*ib]
		switch {
		case ya < yb:
			ia++
		case ya > yb:
			ib++
		default:
			f.consider2(a, swap, uOff, vOff, lenU, lenV, int(f.ents[2*ia+1]), int(f.ents[2*ib+1]))
			ia++
			ib++
		}
	}
}

// estimateBeacons intersects the two nodes' sorted beacon rows: the same
// min/max fold as triangulation.Estimate over the same common-beacon
// set (map iteration order cannot change an extremum, so the answers
// are bit-identical).
//
//ringvet:hotpath
func (f *FlatSnap) estimateBeacons(u, v int) (lower, upper float64, ok bool) {
	upper = math.Inf(1)
	i, e := int(f.bOff[u]), int(f.bOff[u+1])
	j, t := int(f.bOff[v]), int(f.bOff[v+1])
	for i < e && j < t {
		switch {
		case f.bIDs[i] < f.bIDs[j]:
			i++
		case f.bIDs[i] > f.bIDs[j]:
			j++
		default:
			ok = true
			da, db := f.bDist[i], f.bDist[j]
			if s := da + db; s < upper {
				upper = s
			}
			if g := math.Abs(da-db) - ulpGuardFlat*math.Max(da, db); g > lower {
				lower = g
			}
			i++
			j++
		}
	}
	return lower, upper, ok
}
