package oracle

import "unsafe"

// slotHint spreads concurrent callers over n slots (n must be a power
// of two) without a shared atomic cursor. The previous round-robin
// cursor was itself a cross-core contention point: every query on every
// core bounced one cache line through Add(1). Hashing the address of a
// caller stack variable instead gives a goroutine-stable, well-spread
// slot choice for free — goroutine stacks are distinct allocations, and
// splitmix64 turns their addresses into uniform slot picks — so two
// goroutines on different cores almost always record into different
// slots with zero coordination.
//
//ringvet:hotpath
func slotHint(n int) int {
	var p byte
	h := splitmix64(uint64(uintptr(unsafe.Pointer(&p))))
	return int(h & uint64(n-1))
}
