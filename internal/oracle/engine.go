package oracle

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/stats"
	"rings/internal/telemetry"
)

// EngineOptions tunes the serving layer (not the artifacts — those are
// Config's job).
type EngineOptions struct {
	// CacheShards is the shard count of the estimate cache (rounded up
	// to a power of two; default 16).
	CacheShards int
	// CacheCapacity is the per-shard entry cap. 0 applies the default
	// (4096 entries per shard); negative disables caching.
	CacheCapacity int
	// LatencySampleSize is the per-endpoint latency sample capacity
	// (default 2048), spread over several round-robin reservoir shards
	// so recording never funnels through one mutex.
	LatencySampleSize int
}

func (o EngineOptions) withDefaults() EngineOptions {
	if o.CacheShards == 0 {
		o.CacheShards = 16
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 4096
	}
	if o.LatencySampleSize == 0 {
		o.LatencySampleSize = 2048
	}
	return o
}

// Endpoint names used by Engine.Stats.
const (
	EndpointEstimate = "estimate"
	EndpointBatch    = "batch"
	EndpointNearest  = "nearest"
	EndpointRoute    = "route"
	EndpointSwap     = "swap"
)

var endpointNames = []string{
	EndpointEstimate, EndpointBatch, EndpointNearest, EndpointRoute, EndpointSwap,
}

// engineState pairs a snapshot with the cache filled from it. Queries
// load the pair through one atomic read, so a request never mixes one
// snapshot's artifacts with another's cache.
type engineState struct {
	snap  *Snapshot
	cache *shardedCache
}

// latencyShards spreads each endpoint's latency stream over several
// reservoirs (power of two for slotHint): a single reservoir's mutex
// would re-serialize the very traffic the sharded cache keeps
// lock-free.
const latencyShards = 8

// endpointStats tracks one endpoint's counters and latency reservoirs.
// Shard choice comes from slotHint (a per-caller stack-address hash)
// rather than a shared round-robin cursor — the cursor's own cache line
// was a cross-core contention point on the warm query path.
type endpointStats struct {
	count   atomic.Int64
	errors  atomic.Int64
	latency [latencyShards]*stats.Reservoir

	// Preallocated telemetry handles for the same endpoint — captured at
	// construction so observe stays free of map lookups.
	mRequests  *telemetry.Counter
	mErrors    *telemetry.Counter
	mLatencyUs *telemetry.Histogram
}

//ringvet:hotpath
func (s *endpointStats) record(us float64) {
	s.latency[slotHint(latencyShards)].Add(us)
}

func (s *endpointStats) latencySummary() stats.Summary {
	var samples []float64
	for _, r := range s.latency {
		samples = append(samples, r.Samples()...)
	}
	return stats.Summarize(samples)
}

// Engine is the concurrency-safe query layer over a current Snapshot.
// All query methods are lock-free on the snapshot path (one atomic
// pointer read); the only locks on the hot path are the cache shard's
// and the latency reservoir's, both scoped far narrower than a query.
type Engine struct {
	opts      EngineOptions
	state     atomic.Pointer[engineState]
	versions  atomic.Int64
	swapMu    sync.Mutex
	swaps     atomic.Int64
	started   time.Time
	endpoints map[string]*endpointStats
	metrics   *engineMetrics
}

// NewEngine creates an engine serving the given snapshot (installed as
// version 1).
func NewEngine(snap *Snapshot, opts EngineOptions) *Engine {
	e := &Engine{
		opts:      opts.withDefaults(),
		started:   time.Now(),
		endpoints: make(map[string]*endpointStats, len(endpointNames)),
		metrics:   newEngineMetrics(),
	}
	perShard := e.opts.LatencySampleSize / latencyShards
	if perShard < 1 {
		perShard = 1
	}
	for i, name := range endpointNames {
		ep := &endpointStats{
			mRequests:  e.metrics.requests[name],
			mErrors:    e.metrics.errors[name],
			mLatencyUs: e.metrics.latencyUs[name],
		}
		for j := range ep.latency {
			ep.latency[j] = stats.NewReservoir(perShard, int64(i*latencyShards+j+1))
		}
		e.endpoints[name] = ep
	}
	e.Swap(snap)
	return e
}

// Swap atomically installs a new snapshot (and a fresh cache for it) and
// returns the previous one. Queries already in flight finish against the
// old snapshot; no query ever observes a half-installed state. The
// returned snapshot is safe to keep using — it is immutable — or to drop
// for garbage collection.
//
// Swap assigns snap.Version (monotonically increasing from 1), so a
// given snapshot may be installed at most once, in one engine — a
// second install would rewrite Version while readers of the first may
// still be loading it.
func (e *Engine) Swap(snap *Snapshot) *Snapshot {
	start := time.Now()
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	// The version write is safe: snap is unpublished until the Store
	// below, which is the release barrier readers synchronize with.
	snap.Version = e.versions.Add(1)
	old := e.state.Swap(&engineState{
		snap:  snap,
		cache: newCache(e.opts.CacheShards, e.opts.CacheCapacity, e.metrics),
	})
	e.swaps.Add(1)
	e.metrics.swaps.Inc()
	e.metrics.version.Set(float64(snap.Version))
	e.metrics.swapUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	e.observe(EndpointSwap, start, nil)
	if old == nil {
		return nil
	}
	return old.snap
}

// Rebuild builds a snapshot from cfg and swaps it in, returning the new
// snapshot. The build runs without holding any engine lock, so queries
// keep flowing against the current snapshot for its whole duration —
// this is the zero-downtime rebuild path cmd/ringsrv's /snapshot
// endpoint triggers.
func (e *Engine) Rebuild(cfg Config) (*Snapshot, error) {
	snap, err := BuildSnapshot(cfg)
	if err != nil {
		return nil, err
	}
	e.Swap(snap)
	return snap, nil
}

// Snapshot returns the currently served snapshot.
func (e *Engine) Snapshot() *Snapshot { return e.state.Load().snap }

//ringvet:hotpath
func (e *Engine) observe(endpoint string, start time.Time, err error) {
	st := e.endpoints[endpoint]
	st.count.Add(1)
	st.mRequests.Inc()
	if err != nil {
		st.errors.Add(1)
		st.mErrors.Inc()
	}
	us := float64(time.Since(start)) / float64(time.Microsecond)
	st.record(us)
	st.mLatencyUs.Observe(us)
}

// pinAttempts bounds the reload loop around arena pinning. A pin only
// fails when the loaded snapshot's mmap arena was closed after being
// swapped out, in which case reloading the state observes the newer
// snapshot; a handful of retries covers any realistic swap storm.
const pinAttempts = 8

// errArenaClosed reports a query that kept losing the pin race — only
// possible when a caller Closes the snapshot an engine still serves,
// which violates the Close contract.
var errArenaClosed = errors.New("oracle: snapshot arena closed while serving (Close before swap-out?)")

// flatEstimate answers one pair from the snapshot's flat arenas. The
// second return is false when the arena could not be pinned (closed
// after swap-out) and the caller must reload the engine state.
//
//ringvet:hotpath
func flatEstimate(snap *Snapshot, u, v int) (EstimateResult, error, bool) {
	f := snap.Flat
	if f == nil {
		res, err := snap.Estimate(u, v)
		return res, err, true
	}
	if err := snap.checkNode("estimate", u); err != nil {
		return EstimateResult{}, err, true
	}
	if err := snap.checkNode("estimate", v); err != nil {
		return EstimateResult{}, err, true
	}
	if !f.pin() {
		return EstimateResult{}, nil, false
	}
	res := EstimateResult{U: u, V: v, Version: snap.Version}
	res.Lower, res.Upper, res.OK = f.estimatePair(u, v)
	f.unpin()
	return res, nil, true
}

// estimateOn answers one pair against a fixed state, consulting the
// state's cache; misses are answered from the flat arenas.
func estimateOn(st *engineState, u, v int) (EstimateResult, error, bool) {
	if res, ok := st.cache.get(u, v); ok {
		res.Cached = true
		return res, nil, true
	}
	res, err, pinned := flatEstimate(st.snap, u, v)
	if err != nil || !pinned {
		return EstimateResult{}, err, pinned
	}
	st.cache.put(u, v, res)
	return res, nil, true
}

// Estimate answers one distance estimate from the current snapshot,
// consulting the sharded cache. Modulo the Cached flag, the answer is
// byte-identical to Snapshot.Estimate on the snapshot whose version it
// reports (the flat arenas fold the exact same arithmetic).
func (e *Engine) Estimate(u, v int) (EstimateResult, error) {
	start := time.Now()
	var (
		res EstimateResult
		err error
	)
	for attempt := 0; ; attempt++ {
		st := e.state.Load()
		var ok bool
		res, err, ok = estimateOn(st, u, v)
		if ok {
			break
		}
		e.metrics.pinRetries.Inc()
		if attempt >= pinAttempts {
			err = errArenaClosed
			break
		}
	}
	e.observe(EndpointEstimate, start, err)
	return res, err
}

// Pair is one (u, v) query of a batch.
type Pair struct {
	U int `json:"u"`
	V int `json:"v"`
}

// EstimateBatch answers many pairs against one consistent snapshot: the
// state is loaded once, so a concurrent Swap cannot split a batch across
// two snapshots. Invalid pairs fail the whole batch.
func (e *Engine) EstimateBatch(pairs []Pair) ([]EstimateResult, error) {
	return e.EstimateBatchInto(pairs, make([]EstimateResult, len(pairs)))
}

// EstimateBatchInto is EstimateBatch with a caller-supplied result
// buffer (len(out) must equal len(pairs)): the zero-allocation batch
// path. The whole batch reads the flat arenas directly — one state
// load, one arena pin, no cache traffic — so a warm batch performs no
// heap allocation at all; answers remain bit-identical to the single
// query path on the same snapshot version.
//
//ringvet:hotpath
func (e *Engine) EstimateBatchInto(pairs []Pair, out []EstimateResult) ([]EstimateResult, error) {
	start := time.Now()
	if len(out) != len(pairs) {
		//ringvet:ignore noalloc: cold caller-error path, taken once per misuse, never in steady state
		err := fmt.Errorf("oracle: batch buffer holds %d results for %d pairs", len(out), len(pairs))
		e.observe(EndpointBatch, start, err)
		return nil, err
	}
	var err error
	for attempt := 0; ; attempt++ {
		st := e.state.Load()
		var ok bool
		err, ok = batchOn(st, pairs, out)
		if ok {
			break
		}
		e.metrics.pinRetries.Inc()
		if attempt >= pinAttempts {
			err = errArenaClosed
			break
		}
	}
	e.observe(EndpointBatch, start, err)
	if err != nil {
		return nil, err
	}
	e.metrics.batchPairs.Add(int64(len(pairs)))
	return out, nil
}

// batchOn answers a whole batch against one state. With flat arenas the
// arena is pinned once around the loop (the S6 lifetime guard: a
// concurrent Swap+Close cannot unmap it mid-batch); without them it
// falls back to the cached single-pair path.
//
//ringvet:hotpath
func batchOn(st *engineState, pairs []Pair, out []EstimateResult) (error, bool) {
	snap := st.snap
	f := snap.Flat
	if f == nil {
		for i, p := range pairs {
			var err error
			var ok bool
			if out[i], err, ok = estimateOn(st, p.U, p.V); err != nil || !ok {
				if err != nil {
					//ringvet:ignore noalloc: cold error path, the batch aborts here anyway
					err = fmt.Errorf("pair %d: %w", i, err)
				}
				return err, ok
			}
		}
		return nil, true
	}
	if !f.pin() {
		return nil, false
	}
	defer f.unpin()
	n := snap.N()
	for i, p := range pairs {
		if p.U < 0 || p.U >= n || p.V < 0 || p.V >= n {
			u := p.U
			if u >= 0 && u < n {
				u = p.V
			}
			//ringvet:ignore noalloc: cold validation path, taken once per out-of-range pair and aborts the batch
			return fmt.Errorf("pair %d: oracle: estimate node %d out of range [0, %d): %w", i, u, n, ErrNodeRange), true
		}
		r := &out[i]
		r.U, r.V, r.Version, r.Cached = p.U, p.V, snap.Version, false
		r.Lower, r.Upper, r.OK = f.estimatePair(p.U, p.V)
	}
	return nil, true
}

// Nearest answers one nearest-member query from the current snapshot.
func (e *Engine) Nearest(target int) (NearestResult, error) {
	start := time.Now()
	st := e.state.Load()
	res, err := st.snap.Nearest(target)
	e.observe(EndpointNearest, start, err)
	return res, err
}

// Route simulates one packet route on the current snapshot.
func (e *Engine) Route(src, dst int) (RouteResult, error) {
	start := time.Now()
	st := e.state.Load()
	res, err := st.snap.Route(src, dst)
	e.observe(EndpointRoute, start, err)
	return res, err
}

// EndpointStats is one endpoint's counters and latency summary
// (microseconds).
type EndpointStats struct {
	Count     int64         `json:"count"`
	Errors    int64         `json:"errors"`
	LatencyUs stats.Summary `json:"latency_us"`
}

// EngineStats is the self-report returned by Stats.
type EngineStats struct {
	Version   int64                    `json:"version"`
	Swaps     int64                    `json:"swaps"`
	UptimeSec float64                  `json:"uptime_sec"`
	Build     BuildStats               `json:"build"`
	Cache     CacheStats               `json:"cache"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// Stats reports the engine's counters: current snapshot version, swap
// count, the current cache's hit/miss/eviction counters (the cache is
// per snapshot era — counters reset on Swap by design), and per-endpoint
// call counts with latency summaries.
func (e *Engine) Stats() EngineStats {
	st := e.state.Load()
	out := EngineStats{
		Version:   st.snap.Version,
		Swaps:     e.swaps.Load(),
		UptimeSec: time.Since(e.started).Seconds(),
		Build:     st.snap.Build,
		Cache:     st.cache.stats(),
		Endpoints: make(map[string]EndpointStats, len(e.endpoints)),
	}
	for name, ep := range e.endpoints {
		out.Endpoints[name] = EndpointStats{
			Count:     ep.count.Load(),
			Errors:    ep.errors.Load(),
			LatencyUs: ep.latencySummary(),
		}
	}
	return out
}
