package rings

import (
	"testing"

	"rings/internal/graph"
	"rings/internal/metric"
)

// TestFacadeEndToEnd drives every facade entry point once, as the
// quickstart example does.
func TestFacadeEndToEnd(t *testing.T) {
	grid, err := metric.NewGrid(5, 2, metric.L2)
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex(grid)

	tri, err := NewTriangulation(idx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := tri.Estimate(0, 24)
	d := idx.Dist(0, 24)
	if !ok || lo > d*(1+1e-9) || hi < d*(1-1e-9) {
		t.Fatalf("triangulation estimate (%v,%v,%v) for d=%v", lo, hi, ok, d)
	}

	dls, err := NewDistanceLabels(idx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok = EstimateFromLabels(dls.Label(3), dls.Label(21))
	d = idx.Dist(3, 21)
	if !ok || lo > d*(1+1e-9) || hi < d*(1-1e-9) || hi > d*1.5+1e-9 {
		t.Fatalf("label estimate (%v,%v,%v) for d=%v", lo, hi, ok, d)
	}

	g, err := graph.GridGraph(5, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(router, 0, 24, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops < 1 {
		t.Fatal("no hops routed")
	}

	mrouter, err := NewMetricRouter(idx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(mrouter, 24, 0, 500); err != nil {
		t.Fatal(err)
	}

	sw, err := NewSmallWorld(idx, 42)
	if err != nil {
		t.Fatal(err)
	}
	q, err := LocateObject(sw, 0, 24, 200)
	if err != nil {
		t.Fatal(err)
	}
	if q.Hops < 1 {
		t.Fatal("no query hops")
	}

	swb, err := NewSmallWorldCompact(idx, 43)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LocateObject(swb, 24, 0, 200); err != nil {
		t.Fatal(err)
	}

	// Meridian-style nearest-member search over a member subset.
	overlay, err := NewNearestNeighborOverlay(idx, []int{0, 6, 12, 18, 24}, 7)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := overlay.NearestMember(0, 13, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, bestD := overlay.TrueNearest(13)
	if nn.Dist > 3*bestD {
		t.Fatalf("nearest-member dist %v vs optimal %v", nn.Dist, bestD)
	}

	// The serving engine: build a snapshot, query it, swap a rebuild in.
	snap, err := BuildOracleSnapshot(OracleConfig{Workload: "cube", N: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	engine := NewOracleEngine(snap, OracleEngineOptions{})
	est, err := engine.Estimate(0, 17)
	if err != nil || !est.OK || est.Version != 1 {
		t.Fatalf("oracle estimate %+v: %v", est, err)
	}
	if _, err := engine.Nearest(9); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Route(0, 31); err != nil {
		t.Fatal(err)
	}
	next, err := BuildOracleSnapshot(OracleConfig{Workload: "cube", N: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	engine.Swap(next)
	est, err = engine.Estimate(0, 17)
	if err != nil || est.Version != 2 {
		t.Fatalf("post-swap estimate %+v: %v", est, err)
	}
}
