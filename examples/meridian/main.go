// Meridian-style nearest-neighbor service: the application the paper
// closes with (Section 6 cites Meridian [57] as the practical deployment
// of rings of neighbors). A quarter of the hosts run the service; clients
// ask "which server is closest to me?" and the query climbs the servers'
// rings — each hop decided only from the current server's ring members —
// landing on a (near-)optimal server in O(log ∆) hops.
//
//	go run ./examples/meridian
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rings"
	"rings/internal/metric"
	"rings/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(57))
	world, err := metric.NewClusteredLatency(200, 3, []int{4, 4}, []float64{200, 40, 8}, 2, rng)
	if err != nil {
		return err
	}
	// The Meridian regime is exactly where a full sorted distance matrix
	// stops fitting, so build on the memory-bounded lazy backend: rows
	// materialize only as far as the overlay's queries actually reach.
	idx := rings.NewIndexWithOptions(world, rings.IndexOptions{Backend: rings.LazyBackend})

	// Every 4th host runs the service.
	var servers []int
	for s := 0; s < idx.N(); s += 4 {
		servers = append(servers, s)
	}
	overlay, err := rings.NewNearestNeighborOverlay(idx, servers, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%d hosts, %d servers; each server keeps <= %d ring pointers\n",
		idx.N(), len(servers), overlay.MaxRingSize())

	entry := servers[0]
	var ratios, hops []float64
	exact := 0
	for client := 0; client < idx.N(); client++ {
		res, err := overlay.NearestMember(entry, client, 200)
		if err != nil {
			return err
		}
		_, bestD := overlay.TrueNearest(client)
		hops = append(hops, float64(res.Hops))
		if res.Dist == bestD {
			exact++
			ratios = append(ratios, 1)
		} else {
			ratios = append(ratios, res.Dist/bestD)
		}
	}
	h := stats.Summarize(hops)
	r := stats.Summarize(ratios)
	fmt.Printf("\n%d nearest-server queries from a single entry point:\n", idx.N())
	fmt.Printf("  hops:   mean %.2f, p95 %.0f, max %.0f\n", h.Mean, h.P95, h.Max)
	fmt.Printf("  exact:  %.1f%% of queries found the true nearest server\n",
		100*float64(exact)/float64(idx.N()))
	fmt.Printf("  ratio:  mean %.4f, max %.4f (distance vs optimal)\n", r.Mean, r.Max)

	// Multi-range: all servers within 30ms of one client.
	client := 101
	within, err := overlay.MultiRange(entry, client, 30, 200)
	if err != nil {
		return err
	}
	fmt.Printf("\nmulti-range query: %d servers within 30ms of host %d: %v\n",
		len(within), client, within)
	return nil
}
