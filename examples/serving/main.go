// The distance oracle as a long-lived service, embedded in-process: the
// serving layer cmd/ringsrv exposes over HTTP, driven directly. A
// snapshot of the paper's structures (Theorem 3.4 labels, the Meridian
// ring overlay, the Theorem 2.1 metric router) is built once and then
// queried concurrently while a second snapshot — a fresh instance of the
// same workload, as after a topology change — is built and swapped in
// with zero downtime. The engine's own stats close the loop: cache
// hit rates and per-endpoint latency summaries, no external tooling.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"rings"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := rings.OracleConfig{
		Workload: "latency", // the clustered Internet-latency metric
		N:        128,
		Seed:     1,
		Delta:    0.5,
	}
	snap, err := rings.BuildOracleSnapshot(cfg)
	if err != nil {
		return err
	}
	engine := rings.NewOracleEngine(snap, rings.OracleEngineOptions{})
	fmt.Printf("serving %s (n=%d): labels, overlay and router built in %v\n",
		snap.Name, snap.N(), snap.BuildElapsed.Round(1e6))

	est, err := engine.Estimate(3, 77)
	if err != nil {
		return err
	}
	d := snap.Idx.Dist(3, 77)
	fmt.Printf("estimate d(3,77): %.2f <= %.2f <= %.2f (true %.2f, snapshot v%d)\n",
		est.Lower, d, est.Upper, d, est.Version)

	near, err := engine.Nearest(50)
	if err != nil {
		return err
	}
	fmt.Printf("nearest member to node 50: member %d at %.2f after %d hops\n",
		near.Member, near.Dist, near.Hops)

	route, err := engine.Route(3, 77)
	if err != nil {
		return err
	}
	fmt.Printf("route 3 -> 77: %d hops, stretch %.4f\n", route.Hops, route.Stretch)

	// Serve a concurrent query burst while a rebuilt snapshot (fresh
	// seed — think "the network re-measured its latencies") swaps in.
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 2000; i++ {
				if _, err := engine.Estimate(rng.Intn(snap.N()), rng.Intn(snap.N())); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	cfg.Seed = 2
	next, err := rings.BuildOracleSnapshot(cfg)
	if err != nil {
		return err
	}
	engine.Swap(next)
	wg.Wait()

	// A post-swap burst: the cache was replaced with the snapshot, so
	// these hits are all against version 2's artifacts.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4000; i++ {
		if _, err := engine.Estimate(rng.Intn(next.N()), rng.Intn(next.N())); err != nil {
			return err
		}
	}

	st := engine.Stats()
	fmt.Printf("after swap: snapshot v%d (%d swaps), cache %d hits / %d misses\n",
		st.Version, st.Swaps, st.Cache.Hits, st.Cache.Misses)
	ep := st.Endpoints["estimate"]
	fmt.Printf("estimate endpoint: %d calls, p50 %.1fus p99 %.1fus\n",
		ep.Count, ep.LatencyUs.P50, ep.LatencyUs.P99)
	return nil
}
