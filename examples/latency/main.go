// Latency estimation: the paper's motivating application (IDMaps [20],
// Meridian [57]) — estimate all-pairs Internet latencies from per-node
// beacon labels instead of n² measurements.
//
// We synthesize a clustered "Internet" of 150 hosts (continents > POPs >
// hosts, plus per-host access delay), build the (0,δ)-triangulation of
// Theorem 3.2, and compare certified estimates against ground truth. The
// headline property over the classic shared-beacon designs: *every* pair
// gets a two-sided certificate D− <= d <= D+ with D+/D− <= 1+δ.
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rings"
	"rings/internal/metric"
	"rings/internal/stats"
	"rings/internal/triangulation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(2005))
	world, err := metric.NewClusteredLatency(150, 3,
		[]int{4, 5},           // 4 continents, 5 POPs each
		[]float64{120, 25, 5}, // spreads in "ms"
		3,                     // up to 3ms access delay per host
		rng)
	if err != nil {
		return err
	}
	idx := rings.NewIndex(world)
	fmt.Printf("synthetic internet: %d hosts, latencies %.1f..%.1f ms\n",
		idx.N(), idx.MinDistance(), idx.Diameter())

	delta := 0.3
	tri, err := rings.NewTriangulation(idx, delta)
	if err != nil {
		return err
	}
	measured, err := tri.VerifyAllPairs()
	if err != nil {
		return err
	}
	fmt.Printf("\n(0,%.1f)-triangulation: every host stores <= %d beacon latencies\n",
		delta, tri.Order())
	fmt.Printf("certified %d pairs: worst D+/D- = %.4f, zero uncovered pairs\n",
		measured.Pairs, measured.WorstRatio)

	// Error profile of the point estimate D+ across all pairs.
	var errs []float64
	for u := 0; u < idx.N(); u++ {
		for v := u + 1; v < idx.N(); v++ {
			_, hi, _ := tri.Estimate(u, v)
			errs = append(errs, hi/idx.Dist(u, v)-1)
		}
	}
	s := stats.Summarize(errs)
	fmt.Printf("\nrelative overestimate of D+: mean %.4f%%, p95 %.4f%%, max %.4f%%\n",
		100*s.Mean, 100*s.P95, 100*s.Max)

	// Contrast: the classic landmark design ([33,50]; IDMaps' tracers) —
	// one shared random beacon set — leaves a fraction of pairs without a
	// usable certificate no matter how the landmarks fall. (At this n the
	// ring construction's order saturates at n — see EXPERIMENTS.md E4
	// for the O(log n) growth regime — so we give the baseline the
	// landmark budgets such systems actually use.)
	fmt.Println()
	for _, k := range []int{8, 16, 32} {
		shared, err := triangulation.NewSharedBeacons(idx, k, rng)
		if err != nil {
			return err
		}
		fmt.Printf("shared-beacon baseline, %2d landmarks: %5.2f%% of pairs lack a (1+δ)-certificate\n",
			k, 100*shared.BadPairFraction(delta))
	}
	fmt.Println("\nthe per-node rings close that gap for every pair — the \"obvious flaw\"")
	fmt.Println("(Section 1) that Theorem 3.2 repairs.")
	return nil
}
