// ISP routing: compact (1+δ)-stretch routing on a network-like topology
// (Theorem 2.1), contrasted with the trivial full-table scheme — the
// space/stretch trade-off of the paper's Table 1, on one concrete
// network.
//
//	go run ./examples/isproute
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rings"
	"rings/internal/graph"
	"rings/internal/metric"
	"rings/internal/routing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 90-router topology: random geographic placement, links between
	// nearby routers (plus a spanning tree so the network is connected),
	// link weight = propagation latency.
	rng := rand.New(rand.NewSource(13))
	sites := metric.UniformCube(90, 2, 1000, rng)
	g, err := graph.GeometricGraph(sites, 220)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %d routers, %d directed links, max degree %d\n",
		g.N(), g.NumEdges(), g.MaxOutDegree())

	apsp, err := graph.AllPairs(g)
	if err != nil {
		return err
	}

	delta := 0.5
	compact, err := rings.NewRouter(g, delta)
	if err != nil {
		return err
	}
	full, err := routing.NewFullTable(g)
	if err != nil {
		return err
	}

	for _, s := range []routing.Scheme{full, compact} {
		st, err := routing.Evaluate(s, apsp.Metric(), 1, 40*g.N())
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", s.Name())
		fmt.Printf("  stretch      max %.4f  mean %.4f\n", st.MaxStretch, st.MeanStretch)
		fmt.Printf("  FIB size     max %d bits  (sum over routers: %d)\n", st.MaxTableBits, st.SumTableBits)
		fmt.Printf("  header size  max %d bits\n", st.MaxHeaderBits)
	}

	fmt.Printf("\nwith δ = %.1f the compact scheme trades <= %.0f%% extra path length for\n",
		delta, 100*delta)
	fmt.Println("per-router state that scales with log ∆ · (1/δ)^α instead of n.")
	return nil
}
