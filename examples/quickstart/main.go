// Quickstart: a tour of the rings public API on one small doubling
// metric — build the index, certify distances with a (0,δ)-triangulation,
// estimate them from labels alone, route packets with (1+δ) stretch, and
// locate objects through a small-world overlay.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rings"
	"rings/internal/graph"
	"rings/internal/metric"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An 8x8 grid: the canonical low-doubling-dimension metric.
	grid, err := metric.NewGrid(8, 2, metric.L2)
	if err != nil {
		return err
	}
	idx := rings.NewIndex(grid)
	n := idx.N()
	fmt.Printf("metric: %d nodes, diameter %.3f, aspect ratio %.1f\n\n",
		n, idx.Diameter(), idx.AspectRatio())

	// 1. Triangulation (Theorem 3.2): distance bounds with a certificate.
	tri, err := rings.NewTriangulation(idx, 0.5)
	if err != nil {
		return err
	}
	u, v := 0, n-1
	lo, hi, _ := tri.Estimate(u, v)
	fmt.Printf("triangulation: d(%d,%d)=%.3f certified in [%.3f, %.3f] (order %d)\n",
		u, v, idx.Dist(u, v), lo, hi, tri.Order())

	// 2. Distance labels (Theorem 3.4): estimates from two labels alone,
	// no global identifiers anywhere.
	dls, err := rings.NewDistanceLabels(idx, 0.5)
	if err != nil {
		return err
	}
	lo, hi, _ = rings.EstimateFromLabels(dls.Label(3), dls.Label(42))
	fmt.Printf("labels:        d(3,42)=%.3f estimated in [%.3f, %.3f]\n",
		idx.Dist(3, 42), lo, hi)

	// 3. Compact routing (Theorem 2.1) on a jittered grid graph.
	g, err := graph.GridGraph(8, 0.2, 7)
	if err != nil {
		return err
	}
	router, err := rings.NewRouter(g, 0.5)
	if err != nil {
		return err
	}
	res, err := rings.Route(router, 0, n-1, 10*n)
	if err != nil {
		return err
	}
	apsp, err := graph.AllPairs(g)
	if err != nil {
		return err
	}
	fmt.Printf("routing:       0 -> %d in %d hops, stretch %.4f, header <= %d bits\n",
		n-1, res.Hops, res.Length/apsp.Dist(0, n-1), res.MaxHeaderBits)

	// 4. Small-world object location (Theorem 5.2a).
	sw, err := rings.NewSmallWorld(idx, 42)
	if err != nil {
		return err
	}
	q, err := rings.LocateObject(sw, 0, n-1, 100)
	if err != nil {
		return err
	}
	fmt.Printf("small world:   located node %d from node 0 in %d hops (out-degree %d)\n",
		n-1, q.Hops, sw.OutDegree())
	return nil
}
