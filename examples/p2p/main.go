// P2P object location: the paper's small world run as a real distributed
// protocol. Every peer is a goroutine that knows only its own contact
// list (Theorem 5.2(a)'s rings); lookup requests travel peer-to-peer as
// messages, each hop decided strongly locally — the Meridian [57] usage
// pattern the paper closes with.
//
//	go run ./examples/p2p
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rings"
	"rings/internal/metric"
	"rings/internal/simnet"
	"rings/internal/stats"
)

// lookup is the message peers forward toward the peer closest to the
// queried key's owner.
type lookup struct {
	target int
	prev   int
	hops   int
	done   chan int
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 120 peers with clustered "network coordinates".
	rng := rand.New(rand.NewSource(7))
	world, err := metric.NewClusteredLatency(120, 3, []int{3, 4}, []float64{150, 30, 6}, 2, rng)
	if err != nil {
		return err
	}
	idx := rings.NewIndex(world)
	model, err := rings.NewSmallWorld(idx, 99)
	if err != nil {
		return err
	}
	fmt.Printf("overlay: %d peers, out-degree <= %d\n", idx.N(), model.OutDegree())

	net, err := simnet.New(idx.N(), func(ctx *simnet.Context, msg simnet.Message) {
		q := msg.Payload.(lookup)
		if ctx.Node == q.target {
			q.done <- q.hops
			return
		}
		// Strongly local: only this peer's contacts are consulted.
		next, _, err := model.NextHop(q.prev, ctx.Node, q.target)
		if err != nil {
			log.Printf("peer %d: %v", ctx.Node, err)
			q.done <- -1
			return
		}
		q.prev = ctx.Node
		q.hops++
		if err := ctx.Send(next, q); err != nil {
			log.Printf("peer %d: %v", ctx.Node, err)
			q.done <- -1
		}
	})
	if err != nil {
		return err
	}
	defer net.Shutdown()

	budget := 10*int(math.Ceil(math.Log2(float64(idx.N())))) + 10
	var hops []float64
	queries := 0
	for s := 0; s < idx.N(); s += 7 {
		for t := 0; t < idx.N(); t += 11 {
			if s == t {
				continue
			}
			done := make(chan int, 1)
			if err := net.Inject(s, lookup{target: t, prev: -1, done: done}); err != nil {
				return err
			}
			h := <-done
			if h < 0 || h > budget {
				return fmt.Errorf("lookup %d->%d failed (%d hops)", s, t, h)
			}
			hops = append(hops, float64(h))
			queries++
		}
	}
	sum := stats.Summarize(hops)
	fmt.Printf("ran %d distributed lookups over goroutine peers\n", queries)
	fmt.Printf("hops: mean %.2f, p95 %.0f, max %.0f  (log2 n = %.0f)\n",
		sum.Mean, sum.P95, sum.Max, math.Ceil(math.Log2(float64(idx.N()))))
	fmt.Println("every forwarding decision used only the local peer's rings of neighbors.")
	return nil
}
