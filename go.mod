module rings

go 1.24
