// Package rings is a Go implementation of Aleksandrs Slivkins'
// "Distance Estimation and Object Location via Rings of Neighbors"
// (PODC 2005; full version 2006).
//
// The paper attacks four node-labeling problems on metrics of low
// doubling dimension with one sparse distributed data structure — rings
// of neighbors — and this module implements all four results plus every
// substrate they stand on:
//
//   - Compact (1+δ)-stretch routing schemes on doubling graphs and
//     metrics (Theorems 2.1, 4.1 and the two-mode Theorem 4.2/B.1),
//   - (0,δ)-triangulation: distance bounds D− <= d <= D+ with a quality
//     certificate for every node pair (Theorem 3.2),
//   - (1+δ)-approximate distance labeling without global node
//     identifiers, optimal for huge aspect ratios (Theorem 3.4),
//   - searchable small worlds on doubling metrics, including the first
//     non-greedy strongly local routing rule (Theorems 5.2(a,b), 5.5).
//
// This facade re-exports the main entry points; the implementation lives
// under internal/ (one package per substrate — see DESIGN.md for the map
// from paper sections to packages, and EXPERIMENTS.md for the measured
// reproduction of every table and figure).
package rings

import (
	"io"

	"rings/internal/churn"
	"rings/internal/distlabel"
	"rings/internal/graph"
	"rings/internal/metric"
	"rings/internal/nnsearch"
	"rings/internal/oracle"
	"rings/internal/routing"
	"rings/internal/shard"
	"rings/internal/smallworld"
	"rings/internal/triangulation"
)

// Space is a finite metric space on nodes 0..N-1 (see metric.Space).
type Space = metric.Space

// Index is the ball-query interface every construction starts from; any
// backend (eager or memory-bounded lazy, see IndexOptions) satisfies it.
type Index = metric.BallIndex

// IndexOptions selects and tunes a ball-index backend.
type IndexOptions = metric.Options

// Backend selections for IndexOptions, re-exported so module-external
// callers (who cannot reach internal/metric) can pick one.
const (
	// EagerBackend precomputes all sorted rows with a parallel worker
	// pool: O(n^2) memory, O(log n) queries.
	EagerBackend = metric.Eager
	// LazyBackend keeps truncated per-node prefixes extended on demand:
	// memory proportional to what the queries touch, exact answers.
	LazyBackend = metric.Lazy
)

// NewIndex builds the default (eager, parallel-build) index.
func NewIndex(space Space) Index { return metric.NewIndex(space) }

// NewIndexWithOptions builds an index with an explicit backend selection:
// EagerBackend precomputes all rows in parallel, LazyBackend keeps
// memory proportional to the queries actually asked.
func NewIndexWithOptions(space Space, opts IndexOptions) Index { return metric.New(space, opts) }

// Graph is a weighted directed graph with enumerated out-edges.
type Graph = graph.Graph

// Triangulation is a Theorem 3.2 (0,δ)-triangulation.
type Triangulation = triangulation.Triangulation

// NewTriangulation builds a (0,delta)-triangulation: for every pair,
// Estimate returns bounds with D+/D− <= 1+delta.
func NewTriangulation(idx Index, delta float64) (*Triangulation, error) {
	return triangulation.New(idx, delta)
}

// DistanceLabels is a Theorem 3.4 labeling scheme: (1+δ)-approximate
// estimates from labels alone, no global identifiers.
type DistanceLabels = distlabel.Scheme

// NewDistanceLabels builds the Theorem 3.4 scheme.
func NewDistanceLabels(idx Index, delta float64) (*DistanceLabels, error) {
	return distlabel.New(idx, delta)
}

// EstimateFromLabels bounds the distance between the two labeled nodes
// using only the labels.
func EstimateFromLabels(a, b *distlabel.Label) (lower, upper float64, ok bool) {
	return distlabel.Estimate(a, b)
}

// RoutingScheme is a compact routing scheme (labels, tables, local
// forwarding).
type RoutingScheme = routing.Scheme

// NewRouter builds the Theorem 2.1 (1+delta)-stretch scheme for a
// connected weighted graph.
func NewRouter(g *Graph, delta float64) (RoutingScheme, error) {
	return routing.NewThm21(g, delta)
}

// NewMetricRouter builds the Section 4.1 overlay variant on a metric.
func NewMetricRouter(idx Index, delta float64) (RoutingScheme, error) {
	return routing.NewThm21Metric(idx, delta)
}

// Route simulates one packet under a scheme.
func Route(s RoutingScheme, source, target, maxHops int) (routing.RouteResult, error) {
	return routing.Route(s, source, target, maxHops)
}

// SmallWorld is a sampled small-world model with its strongly local
// routing rule.
type SmallWorld = smallworld.Model

// NewSmallWorld samples the Theorem 5.2(a) greedy model.
func NewSmallWorld(idx Index, seed int64) (SmallWorld, error) {
	return smallworld.NewThm52a(idx, smallworld.DefaultParams(seed))
}

// NewSmallWorldCompact samples the Theorem 5.2(b) model (sqrt(log ∆)
// out-degree scaling, non-greedy rule (**)).
func NewSmallWorldCompact(idx Index, seed int64) (SmallWorld, error) {
	return smallworld.NewThm52b(idx, smallworld.DefaultParams(seed))
}

// LocateObject routes a small-world query and reports the hop count.
func LocateObject(m SmallWorld, source, target, maxHops int) (smallworld.QueryResult, error) {
	return smallworld.Query(m, source, target, maxHops)
}

// NearestNeighborOverlay is a Meridian-style ring overlay over a member
// subset, answering nearest-member and multi-range queries (the Section 6
// application of rings of neighbors).
type NearestNeighborOverlay = nnsearch.Overlay

// NewNearestNeighborOverlay builds the overlay over the given member
// subset with Meridian's default ring constants.
func NewNearestNeighborOverlay(idx Index, members []int, seed int64) (*NearestNeighborOverlay, error) {
	return nnsearch.New(idx, members, nnsearch.DefaultConfig(seed))
}

// OracleConfig describes one serving snapshot: workload, estimator
// scheme (labels/beacons), profile and artifact toggles.
type OracleConfig = oracle.Config

// OracleSnapshot is an immutable bundle of serving artifacts (labels,
// beacons, ring overlay, router) over one workload.
type OracleSnapshot = oracle.Snapshot

// OracleEngine is the concurrency-safe query layer: lock-free snapshot
// reads, zero-downtime Swap, a sharded estimate cache and per-endpoint
// latency accounting. cmd/ringsrv serves it over HTTP; embedders can run
// it in-process.
type OracleEngine = oracle.Engine

// OracleEngineOptions tunes the engine's cache and latency sampling.
type OracleEngineOptions = oracle.EngineOptions

// OracleBuildStats is the per-phase build breakdown attached to every
// snapshot (index, nets, packings, rings, Z/T-sets, label fill, overlay,
// router) — the BENCH_build.json row type.
type OracleBuildStats = oracle.BuildStats

// BuildOracleSnapshot constructs every artifact the config asks for
// (the expensive call Swap exists to hide).
func BuildOracleSnapshot(cfg OracleConfig) (*OracleSnapshot, error) {
	return oracle.BuildSnapshot(cfg)
}

// NewOracleEngine creates an engine serving the given snapshot.
func NewOracleEngine(snap *OracleSnapshot, opts OracleEngineOptions) *OracleEngine {
	return oracle.NewEngine(snap, opts)
}

// ReadOracleSnapshot restores a snapshot persisted with
// OracleSnapshot.WriteTo: the workload view (including a churned node
// subset) regenerates from the header, derived artifacts rebuild
// deterministically, and the labels decode from their wire blocks —
// the warm start skips the dominant build phase.
func ReadOracleSnapshot(r io.Reader) (*OracleSnapshot, error) {
	return oracle.ReadSnapshot(r)
}

// ChurnMutator is the incremental membership engine: Join/Leave by
// localized repair over a mutable substrate, each batch committed as a
// delta snapshot that structurally shares everything unchanged with its
// predecessor and swaps into an OracleEngine with zero downtime. After
// any batch the delta snapshot is byte-identical (wire labels and
// estimate/nearest/route answers) to a from-scratch build on the
// surviving node set.
type ChurnMutator = churn.Mutator

// ChurnConfig describes a churn engine: the oracle build recipe plus
// the universe capacity and the minimum node floor.
type ChurnConfig = churn.Config

// ChurnOp is one membership mutation against a stable base id.
type ChurnOp = churn.Op

// ChurnStats is the engine's cumulative repair report.
type ChurnStats = churn.Stats

// Churn op kinds.
const (
	// ChurnJoin activates a dormant base node.
	ChurnJoin = churn.Join
	// ChurnLeave retires an active base node.
	ChurnLeave = churn.Leave
)

// NewChurnMutator generates the capacity-sized base workload and
// performs the initial full build; later ApplyChurn batches repair
// incrementally.
func NewChurnMutator(cfg ChurnConfig) (*ChurnMutator, error) {
	return churn.NewMutator(cfg)
}

// ApplyChurn applies one mutation batch and returns the committed delta
// snapshot (hand it to OracleEngine.Swap to publish).
func ApplyChurn(m *ChurnMutator, ops ...ChurnOp) (*OracleSnapshot, error) {
	return m.Apply(ops...)
}

// ShardFleet is the partitioned serving layer: one global node
// universe split round-robin across K shards, each with its own
// OracleSnapshot/OracleEngine over its subspace, glued by a shared
// beacon tier. Intra-shard estimate/nearest/route queries delegate to
// the owning engine (answers byte-identical to a standalone engine
// over that subspace); cross-shard estimates are certified
// triangle-inequality sandwich bounds from the beacon tier; under
// churn each join/leave repairs only the owning shard. cmd/ringsrv
// serves a fleet over HTTP with -shards K.
type ShardFleet = shard.Fleet

// ShardFleetConfig describes a fleet: the per-shard build recipe, the
// shard count, the beacon tier size and the churn knobs.
type ShardFleetConfig = shard.Config

// ShardFleetStats is the fleet-level aggregation plus per-shard
// engine (and churn) reports.
type ShardFleetStats = shard.FleetStats

// ShardChurnCommit reports one shard's committed mutation batch when
// churn routes through the fleet.
type ShardChurnCommit = shard.ChurnCommit

// ErrCrossShard marks a route whose endpoints live in different
// shards (the beacon tier certifies distances, not paths).
var ErrCrossShard = shard.ErrCrossShard

// NewShardFleet generates the global workload, partitions it across
// cfg.Shards shards, and builds every shard's snapshot concurrently.
func NewShardFleet(cfg ShardFleetConfig) (*ShardFleet, error) {
	return shard.NewFleet(cfg)
}
