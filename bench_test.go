// Benchmarks: one per table and figure of the paper (see DESIGN.md §3 for
// the experiment index), plus the ablations of DESIGN.md §4. Benchmarks
// report the paper's quantities (bits, stretch, hops, order, out-degree)
// via b.ReportMetric, so `go test -bench=. -benchmem` regenerates the
// headline numbers alongside CPU/allocation costs.
package rings

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rings/internal/core"
	"rings/internal/distlabel"
	"rings/internal/measure"
	"rings/internal/metric"
	"rings/internal/nets"
	"rings/internal/packing"
	"rings/internal/routing"
	"rings/internal/smallworld"
	"rings/internal/triangulation"
	"rings/internal/workload"
)

// fixtures are built once and shared across benchmarks.
var (
	fixOnce sync.Once
	fixErr  error

	gridGraph workload.GraphInstance
	expPath   workload.GraphInstance
	gridM     workload.MetricInstance
	lineM     workload.MetricInstance
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		if gridGraph, fixErr = workload.GridGraph(7, 1); fixErr != nil {
			return
		}
		if expPath, fixErr = workload.ExpPath(20, 8); fixErr != nil {
			return
		}
		if gridM, fixErr = workload.Grid(7); fixErr != nil {
			return
		}
		lineM, fixErr = workload.ExpLine(32, 64)
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
}

func benchRouting(b *testing.B, s routing.Scheme, d routing.Distancer) {
	b.Helper()
	st, err := routing.Evaluate(s, d, 2, 60*d.N())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(st.MaxStretch, "stretch-max")
	b.ReportMetric(float64(st.MaxTableBits), "table-bits")
	b.ReportMetric(float64(st.MaxLabelBits), "label-bits")
	b.ReportMetric(float64(st.MaxHeaderBits), "header-bits")
	rng := rand.New(rand.NewSource(1))
	n := d.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if _, err := routing.Route(s, u, v, 60*n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 covers Table 1 (routing on doubling graphs): one
// sub-benchmark per scheme per workload.
func BenchmarkTable1(b *testing.B) {
	fixtures(b)
	for _, inst := range []workload.GraphInstance{gridGraph, expPath} {
		builders := []struct {
			name  string
			build func() (routing.Scheme, error)
		}{
			{"full-table", func() (routing.Scheme, error) { return routing.NewFullTable(inst.G) }},
			{"talwar-global", func() (routing.Scheme, error) { return routing.NewThm21Global(inst.G, 0.5) }},
			{"thm2.1", func() (routing.Scheme, error) { return routing.NewThm21(inst.G, 0.5) }},
			{"thm4.1", func() (routing.Scheme, error) { return routing.NewThm41(inst.G, 0.5) }},
		}
		for _, bt := range builders {
			b.Run(inst.Name+"/"+bt.name, func(b *testing.B) {
				s, err := bt.build()
				if err != nil {
					b.Fatal(err)
				}
				benchRouting(b, s, inst.Idx)
			})
		}
	}
}

// BenchmarkTable2 covers Table 2 (routing on metrics via overlays),
// reporting the overlay out-degree.
func BenchmarkTable2(b *testing.B) {
	fixtures(b)
	for _, inst := range []workload.MetricInstance{gridM, lineM} {
		b.Run(inst.Name+"/thm2.1-metric", func(b *testing.B) {
			s, err := routing.NewThm21Metric(inst.Idx, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(s.Graph().MaxOutDegree()), "out-degree")
			benchRouting(b, s, inst.Idx)
		})
	}
}

// BenchmarkTable3 covers Table 3 (the Theorem B.1 two-mode scheme):
// M1/M2 table split on the ring-overlay workload.
func BenchmarkTable3(b *testing.B) {
	fixtures(b)
	over, err := routing.RingOverlay(gridM.Idx, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	s, err := routing.NewThmB1(over, 0.5, 0)
	if err != nil {
		b.Fatal(err)
	}
	m1, m2 := 0, 0
	for u := 0; u < over.N(); u++ {
		if v := s.M1TableBits(u); v > m1 {
			m1 = v
		}
		if v := s.M2TableBits(u); v > m2 {
			m2 = v
		}
	}
	b.ReportMetric(float64(m1), "m1-table-bits")
	b.ReportMetric(float64(m2), "m2-table-bits")
	benchRouting(b, s, gridM.Idx)
}

// BenchmarkThm32 covers E4: triangulation estimates with certificate.
func BenchmarkThm32(b *testing.B) {
	fixtures(b)
	for _, inst := range []workload.MetricInstance{gridM, lineM} {
		b.Run(inst.Name, func(b *testing.B) {
			tri, err := triangulation.New(inst.Idx, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(tri.Order()), "order")
			rng := rand.New(rand.NewSource(2))
			n := inst.Idx.N()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				tri.Estimate(u, v)
			}
		})
	}
}

// BenchmarkThm34 covers E5: label-only distance estimates.
func BenchmarkThm34(b *testing.B) {
	fixtures(b)
	scheme, err := distlabel.New(lineM.Idx, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	bits, err := scheme.MaxLabelBits()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(bits), "label-bits")
	rng := rand.New(rand.NewSource(3))
	n := lineM.Idx.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		distlabel.Estimate(scheme.Label(u), scheme.Label(v))
	}
}

func benchSmallWorld(b *testing.B, m smallworld.Model, n int) {
	b.Helper()
	st, err := smallworld.EvaluateAll(m, n, 2, 12*n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.OutDegree()), "out-degree")
	b.ReportMetric(float64(st.MaxHops), "hops-max")
	b.ReportMetric(st.MeanHops, "hops-mean")
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if _, err := smallworld.Query(m, u, v, 12*n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThm52a covers E6.
func BenchmarkThm52a(b *testing.B) {
	fixtures(b)
	for _, inst := range []workload.MetricInstance{gridM, lineM} {
		b.Run(inst.Name, func(b *testing.B) {
			m, err := smallworld.NewThm52a(inst.Idx, smallworld.DefaultParams(5))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(m.PointerBudget()), "pointer-budget")
			benchSmallWorld(b, m, inst.Idx.N())
		})
	}
}

// BenchmarkThm52b covers E7.
func BenchmarkThm52b(b *testing.B) {
	fixtures(b)
	m, err := smallworld.NewThm52b(lineM.Idx, smallworld.DefaultParams(6))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.PointerBudget()), "pointer-budget")
	benchSmallWorld(b, m, lineM.Idx.N())
}

// BenchmarkThm55 covers E8 (single long-range link).
func BenchmarkThm55(b *testing.B) {
	fixtures(b)
	m, err := smallworld.NewThm55(gridGraph.G, gridGraph.Idx, 7)
	if err != nil {
		b.Fatal(err)
	}
	benchSmallWorld(b, m, gridGraph.Idx.N())
}

// BenchmarkStructures covers E9 (Kleinberg STRUCTURES baseline).
func BenchmarkStructures(b *testing.B) {
	fixtures(b)
	m, err := smallworld.NewStructures(gridM.Idx, 1, false, 8)
	if err != nil {
		b.Fatal(err)
	}
	benchSmallWorld(b, m, gridM.Idx.N())
}

// BenchmarkSubstrates covers E10: the Section 1.1 substrate
// constructions.
func BenchmarkSubstrates(b *testing.B) {
	fixtures(b)
	idx := gridM.Idx
	b.Run("doubling-measure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := measure.Doubling(idx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nets-hierarchy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nets.NewHierarchy(idx, nets.RoutingScales(idx)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packing", func(b *testing.B) {
		smp, err := measure.NewSampler(idx, measure.Counting(idx.N()))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := packing.New(idx, smp, 1.0/8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure2 covers F2: the host-enumeration translation that
// underlies every local forwarding decision.
func BenchmarkFigure2(b *testing.B) {
	fixtures(b)
	idx := gridM.Idx
	h, err := nets.NewHierarchy(idx, nets.RoutingScales(idx))
	if err != nil {
		b.Fatal(err)
	}
	radii := make([]float64, h.NumLevels())
	for j := range radii {
		radii[j] = 4 * h.Scale(j)
	}
	rings, err := core.BuildNetRings(idx, h, radii)
	if err != nil {
		b.Fatal(err)
	}
	// Build one translation table and benchmark lookups.
	u, j := 0, 1
	uj, uj1 := rings.Ring(u, j), rings.Ring(u, j+1)
	widths := make([]int, uj.Size())
	for a := 0; a < uj.Size(); a++ {
		widths[a] = rings.Ring(uj.Node(a), j+1).Size()
	}
	table := core.NewTable(widths, uj1.Size())
	for a := 0; a < uj.Size(); a++ {
		fj1 := rings.Ring(uj.Node(a), j+1)
		for bb := 0; bb < fj1.Size(); bb++ {
			if m, ok := uj1.IndexOf(fj1.Node(bb)); ok {
				if err := table.Set(a, bb, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(table.Bits()), "zeta-bits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Get(i%uj.Size(), i%3)
	}
}

// BenchmarkAblationDelta sweeps δ for Theorem 2.1, showing the
// (1/δ)^O(α) table growth against the stretch target (DESIGN.md §4.4).
func BenchmarkAblationDelta(b *testing.B) {
	fixtures(b)
	for _, delta := range []float64{1.0, 0.5, 0.25} {
		b.Run(fmt.Sprintf("delta=%v", delta), func(b *testing.B) {
			s, err := routing.NewThm21(gridGraph.G, delta)
			if err != nil {
				b.Fatal(err)
			}
			benchRouting(b, s, gridGraph.Idx)
		})
	}
}

// BenchmarkAblationSamplesC sweeps the small-world sampling constant
// (DESIGN.md §4.3): more samples per ring buy lower hop counts.
func BenchmarkAblationSamplesC(b *testing.B) {
	fixtures(b)
	for _, cy := range []float64{1, 3, 6} {
		b.Run(fmt.Sprintf("cy=%v", cy), func(b *testing.B) {
			p := smallworld.Params{CX: 2, CY: cy, Seed: 11}
			m, err := smallworld.NewThm52a(lineM.Idx, p)
			if err != nil {
				b.Fatal(err)
			}
			benchSmallWorld(b, m, lineM.Idx.N())
		})
	}
}

// BenchmarkAblationGlobalIDs isolates the Figure-2 effect: identical
// zooming scheme, local host-enumeration indices vs global IDs
// (DESIGN.md §4; the label-bits metrics differ, stretch matches).
func BenchmarkAblationGlobalIDs(b *testing.B) {
	fixtures(b)
	b.Run("local-ids", func(b *testing.B) {
		s, err := routing.NewThm21(expPath.G, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		benchRouting(b, s, expPath.Idx)
	})
	b.Run("global-ids", func(b *testing.B) {
		s, err := routing.NewThm21Global(expPath.G, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		benchRouting(b, s, expPath.Idx)
	})
}

// BenchmarkIndexBuild measures the shared substrate cost every
// construction pays first.
func BenchmarkIndexBuild(b *testing.B) {
	g, err := metric.NewGrid(12, 2, metric.L2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metric.NewIndex(g)
	}
}
