// Command labeler builds distance estimation structures — the
// (0,δ)-triangulation of Theorem 3.2 or the distance labels of Theorem
// 3.4 — on a synthetic doubling metric and answers pair queries:
//
//	labeler -workload latency -n 100 -mode tri -pairs 0:5,3:77
//	labeler -workload expline -n 48 -logaspect 300 -mode dls -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rings/internal/distlabel"
	"rings/internal/triangulation"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "labeler:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl     = flag.String("workload", "latency", "grid | cube | expline | latency")
		side   = flag.Int("side", 7, "grid side")
		n      = flag.Int("n", 64, "node count")
		logA   = flag.Float64("logaspect", 60, "log2 aspect ratio (expline)")
		mode   = flag.String("mode", "tri", "tri | dls | simple")
		delta  = flag.Float64("delta", 0.5, "target approximation slack")
		seed   = flag.Int64("seed", 1, "random seed")
		pairs  = flag.String("pairs", "", "pair list u:v,u:v,... (default: a few samples)")
		verify = flag.Bool("verify", false, "verify the guarantee over all pairs")
	)
	flag.Parse()

	var inst workload.MetricInstance
	var err error
	switch *wl {
	case "grid":
		inst, err = workload.Grid(*side)
	case "cube":
		inst, err = workload.Cube(*n, *seed)
	case "expline":
		inst, err = workload.ExpLine(*n, *logA)
	case "latency":
		inst, err = workload.Latency(*n, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}
	idx := inst.Idx

	queryPairs, err := parsePairs(*pairs, idx.N())
	if err != nil {
		return err
	}

	estimate := func(u, v int) (lo, hi float64, ok bool) { return 0, 0, false }
	switch *mode {
	case "tri":
		tri, err := triangulation.New(idx, *delta)
		if err != nil {
			return err
		}
		bits, err := tri.MaxLabelBits()
		if err != nil {
			return err
		}
		fmt.Printf("(0,%.2g)-triangulation on %s: order %d, label bits(max) %d\n",
			*delta, inst.Name, tri.Order(), bits)
		if *verify {
			st, err := tri.VerifyAllPairs()
			if err != nil {
				return err
			}
			fmt.Printf("verified %d pairs: worst D+/D- = %.4f, bad pairs = %d\n",
				st.Pairs, st.WorstRatio, st.BadPairs)
		}
		estimate = tri.Estimate
	case "dls":
		s, err := distlabel.New(idx, *delta)
		if err != nil {
			return err
		}
		bits, err := s.MaxLabelBits()
		if err != nil {
			return err
		}
		fmt.Printf("thm3.4 labels on %s: label bits(max) %d (no global IDs)\n", inst.Name, bits)
		if *verify {
			st, err := s.VerifyAllPairs()
			if err != nil {
				return err
			}
			fmt.Printf("verified %d pairs: worst D+/d = %.4f, bad pairs = %d\n",
				st.Pairs, st.WorstUpperSlack, st.BadPairs)
		}
		estimate = func(u, v int) (float64, float64, bool) {
			return distlabel.Estimate(s.Label(u), s.Label(v))
		}
	case "simple":
		s, err := distlabel.NewSimple(idx, *delta)
		if err != nil {
			return err
		}
		bits, err := s.MaxLabelBits()
		if err != nil {
			return err
		}
		fmt.Printf("[44]-style labels on %s: label bits(max) %d (global IDs)\n", inst.Name, bits)
		if *verify {
			if err := s.Verify(); err != nil {
				return err
			}
			fmt.Println("verified all pairs")
		}
		estimate = s.Estimate
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	for _, p := range queryPairs {
		lo, hi, ok := estimate(p[0], p[1])
		d := idx.Dist(p[0], p[1])
		if !ok {
			fmt.Printf("  d(%d,%d): no common beacon (unexpected)\n", p[0], p[1])
			continue
		}
		fmt.Printf("  d(%d,%d) = %.6g   certified in [%.6g, %.6g]  (ratio %.4f)\n",
			p[0], p[1], d, lo, hi, hi/d)
	}
	return nil
}

func parsePairs(s string, n int) ([][2]int, error) {
	if s == "" {
		return [][2]int{{0, n - 1}, {0, n / 2}, {n / 3, 2 * n / 3}}, nil
	}
	var out [][2]int
	for _, item := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad pair %q (want u:v)", item)
		}
		u, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %w", item, err)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %w", item, err)
		}
		if u < 0 || v < 0 || u >= n || v >= n || u == v {
			return nil, fmt.Errorf("pair %q out of range (n=%d)", item, n)
		}
		out = append(out, [2]int{u, v})
	}
	return out, nil
}
