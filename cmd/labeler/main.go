// Command labeler builds distance estimation structures — the
// (0,δ)-triangulation of Theorem 3.2 or the distance labels of Theorem
// 3.4 — on a synthetic doubling metric and answers pair queries:
//
//	labeler -workload latency -n 100 -mode tri -pairs 0:5,3:77
//	labeler -workload expline -n 48 -logaspect 300 -mode dls -verify
//	labeler -workload latency -n 256 -mode dls -workers 4 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rings/internal/distlabel"
	"rings/internal/metric"
	"rings/internal/oracle"
	"rings/internal/par"
	"rings/internal/triangulation"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "labeler:", err)
		os.Exit(1)
	}
}

// pairReport is one pair query in the -json output.
type pairReport struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Dist  float64 `json:"dist"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
	OK    bool    `json:"ok"`
}

// jsonReport is the machine-readable run summary (-json). Build reuses
// oracle.BuildStats — the BENCH_build.json row schema — so the two
// tools cannot drift; phases labeler does not run (index is folded
// into the workload build here; no overlay/router/verify) stay zero.
type jsonReport struct {
	Mode    string            `json:"mode"`
	Delta   float64           `json:"delta"`
	MaxBits int               `json:"max_bits"`
	Build   oracle.BuildStats `json:"build"`

	Verified bool         `json:"verified"`
	BadPairs int          `json:"bad_pairs"`
	Pairs    []pairReport `json:"pairs"`
}

func run() error {
	var (
		wl      = flag.String("workload", "latency", "grid | cube | expline | latency")
		side    = flag.Int("side", 7, "grid side")
		n       = flag.Int("n", 64, "node count")
		logA    = flag.Float64("logaspect", 60, "log2 aspect ratio (expline)")
		mode    = flag.String("mode", "tri", "tri | dls | simple")
		delta   = flag.Float64("delta", 0.5, "target approximation slack")
		seed    = flag.Int64("seed", 1, "random seed")
		pairs   = flag.String("pairs", "", "pair list u:v,u:v,... (default: a few samples)")
		verify  = flag.Bool("verify", false, "verify the guarantee over all pairs")
		workers = flag.Int("workers", 0, "build parallelism across index and construction (0 = GOMAXPROCS)")
		asJSON  = flag.Bool("json", false, "emit one JSON report instead of text")
	)
	flag.Parse()
	if *delta <= 0 || *delta > 1 {
		return fmt.Errorf("delta = %v, want (0, 1]", *delta)
	}
	workload.SetIndexOptions(metric.Options{Workers: *workers})

	var inst workload.MetricInstance
	var err error
	switch *wl {
	case "grid":
		inst, err = workload.Grid(*side)
	case "cube":
		inst, err = workload.Cube(*n, *seed)
	case "expline":
		inst, err = workload.ExpLine(*n, *logA)
	case "latency":
		inst, err = workload.Latency(*n, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}
	idx := inst.Idx

	queryPairs, err := parsePairs(*pairs, idx.N())
	if err != nil {
		return err
	}

	report := jsonReport{Mode: *mode, Delta: *delta}
	report.Build.Workload = inst.Name
	report.Build.N = idx.N()
	// Resolved count, not the raw flag: BuildSnapshot records it the
	// same way, keeping the shared row schema comparable.
	report.Build.Workers = par.Workers(*workers, idx.N())
	quiet := func(format string, args ...any) {
		if !*asJSON {
			fmt.Printf(format, args...)
		}
	}
	recordCons := func(cons *triangulation.Construction) {
		report.Build.NetsSec = cons.Timings.Nets.Seconds()
		report.Build.RadiiSec = cons.Timings.Radii.Seconds()
		report.Build.PackingsSec = cons.Timings.Packings.Seconds()
		report.Build.RingsSec = cons.Timings.Rings.Seconds()
	}

	params := triangulation.DefaultParams(*delta / 6)
	params.Workers = *workers

	estimate := func(u, v int) (lo, hi float64, ok bool) { return 0, 0, false }
	switch *mode {
	case "tri":
		cons, err := triangulation.NewConstructionParams(idx, params)
		if err != nil {
			return err
		}
		recordCons(cons)
		tri := triangulation.FromConstruction(cons, *delta)
		bits, err := tri.MaxLabelBits()
		if err != nil {
			return err
		}
		report.MaxBits = bits
		quiet("(0,%.2g)-triangulation on %s: order %d, label bits(max) %d\n",
			*delta, inst.Name, tri.Order(), bits)
		if *verify {
			st, err := tri.VerifyAllPairs()
			if err != nil {
				return err
			}
			report.Verified, report.BadPairs = true, st.BadPairs
			quiet("verified %d pairs: worst D+/D- = %.4f, bad pairs = %d\n",
				st.Pairs, st.WorstRatio, st.BadPairs)
		}
		estimate = tri.Estimate
	case "dls":
		cons, err := triangulation.NewConstructionParams(idx, params)
		if err != nil {
			return err
		}
		recordCons(cons)
		s, err := distlabel.FromConstruction(cons, *delta)
		if err != nil {
			return err
		}
		report.Build.ZSetsSec = s.Timings.ZSets.Seconds()
		report.Build.TSetsSec = s.Timings.TSets.Seconds()
		report.Build.HostEnumsSec = s.Timings.HostEnums.Seconds()
		report.Build.LabelFillSec = s.Timings.Labels.Seconds()
		report.Build.Scheme = oracle.SchemeLabels
		bits, err := s.MaxLabelBits()
		if err != nil {
			return err
		}
		report.MaxBits = bits
		quiet("thm3.4 labels on %s: label bits(max) %d (no global IDs)\n", inst.Name, bits)
		if *verify {
			st, err := s.VerifyAllPairs()
			if err != nil {
				return err
			}
			report.Verified, report.BadPairs = true, st.BadPairs
			quiet("verified %d pairs: worst D+/d = %.4f, bad pairs = %d\n",
				st.Pairs, st.WorstUpperSlack, st.BadPairs)
		}
		estimate = func(u, v int) (float64, float64, bool) {
			return distlabel.Estimate(s.Label(u), s.Label(v))
		}
	case "simple":
		s, err := distlabel.NewSimple(idx, *delta)
		if err != nil {
			return err
		}
		bits, err := s.MaxLabelBits()
		if err != nil {
			return err
		}
		report.MaxBits = bits
		quiet("[44]-style labels on %s: label bits(max) %d (global IDs)\n", inst.Name, bits)
		if *verify {
			if err := s.Verify(); err != nil {
				return err
			}
			report.Verified = true
			quiet("verified all pairs\n")
		}
		estimate = s.Estimate
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	for _, p := range queryPairs {
		lo, hi, ok := estimate(p[0], p[1])
		d := idx.Dist(p[0], p[1])
		report.Pairs = append(report.Pairs, pairReport{U: p[0], V: p[1], Dist: d, Lower: lo, Upper: hi, OK: ok})
		if !ok {
			quiet("  d(%d,%d): no common beacon (unexpected)\n", p[0], p[1])
			continue
		}
		quiet("  d(%d,%d) = %.6g   certified in [%.6g, %.6g]  (ratio %.4f)\n",
			p[0], p[1], d, lo, hi, hi/d)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

func parsePairs(s string, n int) ([][2]int, error) {
	if s == "" {
		return [][2]int{{0, n - 1}, {0, n / 2}, {n / 3, 2 * n / 3}}, nil
	}
	var out [][2]int
	for _, item := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad pair %q (want u:v)", item)
		}
		u, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %w", item, err)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad pair %q: %w", item, err)
		}
		if u < 0 || v < 0 || u >= n || v >= n || u == v {
			return nil, fmt.Errorf("pair %q out of range (n=%d)", item, n)
		}
		out = append(out, [2]int{u, v})
	}
	return out, nil
}
