package main

import "testing"

func TestParsePairs(t *testing.T) {
	got, err := parsePairs("0:5, 3:7", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]int{0, 5} || got[1] != [2]int{3, 7} {
		t.Errorf("parsePairs = %v", got)
	}
	// Default sample pairs.
	def, err := parsePairs("", 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 3 {
		t.Errorf("default pairs = %v", def)
	}
	for _, bad := range []string{"0", "0:x", "x:1", "0:99", "-1:3", "4:4"} {
		if _, err := parsePairs(bad, 10); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
