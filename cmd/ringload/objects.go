// Object-location traffic (-objects FRAC): that fraction of each query
// client's requests goes to the server's object endpoints instead of
// the distance mix. At startup ringload publishes a small catalog of
// named objects; during the run clients issue Zipf-popular GET /lookup
// queries (a few names absorb most of the traffic, the paper's
// popular-object regime), occasionally "move" an object along a random
// trajectory (publish at the new node, then unpublish the old — the
// replica set never empties), and in the middle of the run a
// flash-crowd phase concentrates every lookup on one object. Under
// churn, lookups tolerate the same machine-readable race codes as the
// distance mix (out_of_range, plus no_replica/not_found when a move
// races a server-side republish); everything else fails the run.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// objCount is the size of the published catalog; the Zipf exponent
// skews most lookups onto the first few names.
const (
	objCount = 24
	zipfS    = 1.4
)

// objHealth mirrors the objects block of ringsrv's /healthz body.
type objHealth struct {
	Ready       bool  `json:"ready"`
	Objects     int   `json:"objects"`
	Replicas    int   `json:"replicas"`
	Republishes int64 `json:"republishes"`
}

func objName(i int) string { return fmt.Sprintf("obj-%02d", i) }

// seedObjects publishes the catalog before the run starts: every object
// gets one replica on a random node. Under fleet churn a random global
// id can be dormant (code out_of_range), so each object retries a few
// draws; only an object that cannot be placed at all fails the seed.
// Returns the node each object was published on, indexed by object.
func seedObjects(client *http.Client, base string, n int, rng *rand.Rand) ([]int, error) {
	pos := make([]int, objCount)
	for i := range pos {
		pos[i] = -1
		for attempt := 0; attempt < 16; attempt++ {
			node := rng.Intn(n)
			status, code, err := postPublish(client, base, "/publish", objName(i), node)
			if err != nil {
				return nil, fmt.Errorf("seed %s: %w", objName(i), err)
			}
			if status == http.StatusOK {
				pos[i] = node
				break
			}
			if status == http.StatusBadRequest && code == "out_of_range" {
				continue // dormant id under fleet churn; redraw
			}
			return nil, fmt.Errorf("seed %s on node %d: status %d code %q", objName(i), node, status, code)
		}
		if pos[i] < 0 {
			return nil, fmt.Errorf("seed %s: no active node found in 16 draws", objName(i))
		}
	}
	return pos, nil
}

// postPublish issues one publish/unpublish and returns the status and,
// on a non-200, the machine-readable error code.
func postPublish(client *http.Client, base, path, obj string, node int) (int, string, error) {
	body, err := json.Marshal(map[string]any{"object": obj, "node": node})
	if err != nil {
		return 0, "", err
	}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, errCode(resp.Body), nil
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, "", nil
}

// objectRaceCode reports whether an object-endpoint error code is a
// tolerated churn race: a node id that fell out of range, a move whose
// old holder was already re-placed by a server-side repair, or a name
// caught between that repair's unpublish and re-publish.
func objectRaceCode(code string) bool {
	switch code {
	case "out_of_range", "no_replica", "not_found":
		return true
	}
	return false
}

// doLookup issues one GET /lookup with Zipf-drawn popularity (or the
// flash object during the crowd phase) and verifies what the protocol
// alone guarantees: a certified answer carries a replica node and a
// non-negative distance, and a lookup issued from the queried object's
// own replica must answer that node at distance zero (checked only
// outside churn, where the owner's position cannot go stale).
func (g *generator) doLookup(client *http.Client, n int, rng *rand.Rand, zipf *rand.Zipf, pos []int, clientID int, flash bool) sample {
	idx := int(zipf.Uint64())
	if flash {
		idx = 0
	}
	from := rng.Intn(n)
	selfLookup := false
	// Only this object's owning client knows its true position (other
	// clients' moves would make a shared position stale).
	if !g.verify && g.objClients > 0 && idx%g.objClients == clientID && pos[idx] >= 0 && rng.Intn(4) == 0 {
		from, selfLookup = pos[idx], true
	}
	s := sample{endpoint: "lookup"}
	url := fmt.Sprintf("%s/lookup?object=%s&from=%d", g.base, objName(idx), from)
	start := time.Now()
	resp, err := g.withRetry(rng, &s, func() (*http.Response, error) { return client.Get(url) })
	s.latencyMs = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		s.err = err
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		if g.verify && objectRaceCode(errCode(resp.Body)) {
			s.stale = true
			return s
		}
		s.err = fmt.Errorf("status %d", resp.StatusCode)
		return s
	}
	var res struct {
		Node     int     `json:"node"`
		Dist     float64 `json:"dist"`
		Replicas int     `json:"replicas"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
		s.err = fmt.Errorf("lookup body: %v", derr)
		return s
	}
	if res.Dist < 0 || res.Replicas < 1 {
		s.err = fmt.Errorf("lookup mismatch: node=%d dist=%v replicas=%d", res.Node, res.Dist, res.Replicas)
		return s
	}
	if selfLookup && (res.Node != from || res.Dist != 0) {
		s.err = fmt.Errorf("lookup mismatch: from replica %d answered node=%d dist=%v", from, res.Node, res.Dist)
	}
	return s
}

// doMove advances one object along its trajectory: publish at the next
// node, then unpublish the previous one, so the replica set never
// empties. Each object is moved by exactly one client (idx % clients ==
// this client), so outside churn the remembered position is always the
// true holder; under churn a server-side republish can win the race and
// the unpublish's no_replica answer is tolerated. Mutations never
// retry, mirroring the /join//leave policy.
func (g *generator) doMove(client *http.Client, n int, rng *rand.Rand, pos []int, idx int) sample {
	next := rng.Intn(n)
	prev := pos[idx]
	s := sample{endpoint: "move"}
	start := time.Now()
	status, code, err := postPublish(client, g.base, "/publish", objName(idx), next)
	if err == nil && status == http.StatusOK && prev >= 0 && prev != next {
		pos[idx] = next
		status, code, err = postPublish(client, g.base, "/unpublish", objName(idx), prev)
	}
	s.latencyMs = float64(time.Since(start)) / float64(time.Millisecond)
	s.status = status
	switch {
	case err != nil:
		s.err = err
	case status == http.StatusOK:
	case g.verify && objectRaceCode(code):
		s.stale = true
	default:
		s.err = fmt.Errorf("status %d code %q", status, code)
	}
	return s
}

// objectsReport is the duration-end scrape of /objects/stats folded
// into the run report: the server's own lookup/miss/republish counters,
// whichever mode answered (ringload has no compile-time dependency on
// the server, like health and serverStats).
type objectsReport struct {
	Objects     int   `json:"objects"`
	Replicas    int   `json:"replicas"`
	Lookups     int64 `json:"lookups"`
	NotFound    int64 `json:"not_found"`
	Misses      int64 `json:"misses"`
	Republishes int64 `json:"republishes"`
}

func fetchObjectsReport(client *http.Client, base string) (*objectsReport, error) {
	resp, err := client.Get(base + "/objects/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("objects/stats: status %d", resp.StatusCode)
	}
	var body struct {
		Single *objectsReport `json:"single"`
		Fleet  *objectsReport `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("objects/stats: %w", err)
	}
	if body.Fleet != nil {
		return body.Fleet, nil
	}
	if body.Single != nil {
		return body.Single, nil
	}
	return nil, fmt.Errorf("objects/stats: empty body")
}
