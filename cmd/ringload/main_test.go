package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// flakyServer answers /estimate with `fail` transient failures before
// succeeding (and everything else 200), counting attempts.
func flakyServer(t *testing.T, fail int, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n := attempts.Add(1); n <= int64(fail) {
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":"injected","code":"unavailable"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"upper": 1.5, "lower": 1.0, "ok": true}`)
	}))
	t.Cleanup(srv.Close)
	return srv, &attempts
}

// TestRetryRidesOutTransient: a query that 503s twice then succeeds is
// a success with retries=2 — the chaos-smoke contract (a replica
// restart must not surface client-visible errors).
func TestRetryRidesOutTransient(t *testing.T) {
	srv, attempts := flakyServer(t, 2, http.StatusServiceUnavailable)
	g := &generator{base: srv.URL, retries: 3}
	s := g.doRequest(srv.Client(), "estimate", 8, rand.New(rand.NewSource(1)))
	if s.err != nil || s.status != http.StatusOK {
		t.Fatalf("sample = %+v, want success after retries", s)
	}
	if s.retries != 2 || s.gaveUp {
		t.Fatalf("retries=%d gaveUp=%v, want 2/false", s.retries, s.gaveUp)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestRetryGivesUp: a persistently-503ing endpoint exhausts the budget
// and surfaces as an error with gaveUp set.
func TestRetryGivesUp(t *testing.T) {
	srv, attempts := flakyServer(t, 1<<30, http.StatusBadGateway)
	g := &generator{base: srv.URL, retries: 2}
	s := g.doRequest(srv.Client(), "estimate", 8, rand.New(rand.NewSource(1)))
	if s.err == nil {
		t.Fatalf("sample = %+v, want error after giving up", s)
	}
	if s.retries != 2 || !s.gaveUp {
		t.Fatalf("retries=%d gaveUp=%v, want 2/true", s.retries, s.gaveUp)
	}
	if got := attempts.Load(); got != 3 { // initial + 2 retries
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestRetrySkipsPermanentStatus: 501 is the server's contract answer
// (cross-shard route, disabled subsystem) — never retried; 400 is a
// client error — never retried.
func TestRetrySkipsPermanentStatus(t *testing.T) {
	for _, status := range []int{http.StatusNotImplemented, http.StatusBadRequest} {
		srv, attempts := flakyServer(t, 1<<30, status)
		g := &generator{base: srv.URL, retries: 3}
		s := g.doRequest(srv.Client(), "estimate", 8, rand.New(rand.NewSource(1)))
		if s.err == nil || s.retries != 0 || s.gaveUp {
			t.Fatalf("status %d: sample = %+v, want immediate error with no retries", status, s)
		}
		if got := attempts.Load(); got != 1 {
			t.Fatalf("status %d: server saw %d attempts, want 1", status, got)
		}
	}
}

// TestRetryDisabled: -retries 0 restores fail-fast (and never marks
// gaveUp, so the report distinguishes "no budget" from "exhausted").
func TestRetryDisabled(t *testing.T) {
	srv, attempts := flakyServer(t, 1<<30, http.StatusServiceUnavailable)
	g := &generator{base: srv.URL, retries: 0}
	s := g.doRequest(srv.Client(), "estimate", 8, rand.New(rand.NewSource(1)))
	if s.err == nil || s.retries != 0 || s.gaveUp {
		t.Fatalf("sample = %+v, want plain error", s)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// TestChurnNeverRetries: mutations are not idempotent; a transient
// failure on /join must surface after exactly one attempt.
func TestChurnNeverRetries(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	s, n := doChurn(srv.Client(), srv.URL, "join")
	if s.err == nil || n != 0 || s.retries != 0 {
		t.Fatalf("churn sample = %+v n=%d, want one failed attempt", s, n)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

func statsServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFetchServerLatenciesSingleEngine: a single engine's /stats body
// yields one Summary per touched endpoint; untouched endpoints (count
// 0) are dropped.
func TestFetchServerLatenciesSingleEngine(t *testing.T) {
	srv := statsServer(t, `{
		"endpoints": {
			"estimate": {"count": 120, "latency_us": {"count": 120, "p50": 3.5, "p95": 9, "p99": 14, "max": 20}},
			"nearest":  {"count": 0,   "latency_us": {}}
		}
	}`)
	got, err := fetchServerLatencies(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("want exactly the touched endpoint, got %v", got)
	}
	est, ok := got["estimate"]
	if !ok || est.P50 != 3.5 || est.P99 != 14 {
		t.Fatalf("estimate summary: %+v (present=%v)", est, ok)
	}
}

// TestFetchServerLatenciesFleet: a fleet's /stats nests one engine
// report per shard; keys carry the shard prefix because reservoir
// percentiles cannot be merged after the fact.
func TestFetchServerLatenciesFleet(t *testing.T) {
	srv := statsServer(t, `{
		"shards": 2,
		"per_shard": [
			{"shard": 0, "engine": {"endpoints": {"estimate": {"count": 10, "latency_us": {"count": 10, "p50": 2}}}}},
			{"shard": 1, "engine": {"endpoints": {"estimate": {"count": 12, "latency_us": {"count": 12, "p50": 4}}}}}
		]
	}`)
	got, err := fetchServerLatencies(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want one entry per shard, got %v", got)
	}
	if got["shard0/estimate"].P50 != 2 || got["shard1/estimate"].P50 != 4 {
		t.Fatalf("per-shard summaries: %v", got)
	}
}

// TestFetchServerLatenciesEmpty: a body with no touched endpoints is an
// error (the caller warns and omits the section) rather than an empty map
// that would serialize as a lie.
func TestFetchServerLatenciesEmpty(t *testing.T) {
	srv := statsServer(t, `{"endpoints": {}}`)
	if _, err := fetchServerLatencies(srv.Client(), srv.URL); err == nil {
		t.Fatal("empty stats body accepted")
	}
}

func traceServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFetchSlowQueries: the trace dump keeps the k slowest records,
// slowest first.
func TestFetchSlowQueries(t *testing.T) {
	srv := traceServer(t, `{
		"sample_rate": 4,
		"records": [
			{"endpoint": "estimate", "u": 1, "v": 2, "latency_us": 5},
			{"endpoint": "estimate", "u": 3, "v": 4, "latency_us": 90, "cross": true},
			{"endpoint": "estimate", "u": 5, "v": 6, "latency_us": 40}
		]
	}`)
	got, err := fetchSlowQueries(srv.Client(), srv.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 records, got %v", got)
	}
	if got[0].LatencyUs != 90 || !got[0].Cross || got[1].LatencyUs != 40 {
		t.Fatalf("slowest-first order broken: %+v", got)
	}
}

// TestFetchSlowQueriesDisabled: a server with tracing off reports an
// actionable error instead of an empty dump.
func TestFetchSlowQueriesDisabled(t *testing.T) {
	srv := traceServer(t, `{"sample_rate": 0, "records": []}`)
	if _, err := fetchSlowQueries(srv.Client(), srv.URL, 3); err == nil {
		t.Fatal("disabled tracing accepted")
	}
}
