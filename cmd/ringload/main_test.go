package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func statsServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/stats" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFetchServerLatenciesSingleEngine: a single engine's /stats body
// yields one Summary per touched endpoint; untouched endpoints (count
// 0) are dropped.
func TestFetchServerLatenciesSingleEngine(t *testing.T) {
	srv := statsServer(t, `{
		"endpoints": {
			"estimate": {"count": 120, "latency_us": {"count": 120, "p50": 3.5, "p95": 9, "p99": 14, "max": 20}},
			"nearest":  {"count": 0,   "latency_us": {}}
		}
	}`)
	got, err := fetchServerLatencies(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("want exactly the touched endpoint, got %v", got)
	}
	est, ok := got["estimate"]
	if !ok || est.P50 != 3.5 || est.P99 != 14 {
		t.Fatalf("estimate summary: %+v (present=%v)", est, ok)
	}
}

// TestFetchServerLatenciesFleet: a fleet's /stats nests one engine
// report per shard; keys carry the shard prefix because reservoir
// percentiles cannot be merged after the fact.
func TestFetchServerLatenciesFleet(t *testing.T) {
	srv := statsServer(t, `{
		"shards": 2,
		"per_shard": [
			{"shard": 0, "engine": {"endpoints": {"estimate": {"count": 10, "latency_us": {"count": 10, "p50": 2}}}}},
			{"shard": 1, "engine": {"endpoints": {"estimate": {"count": 12, "latency_us": {"count": 12, "p50": 4}}}}}
		]
	}`)
	got, err := fetchServerLatencies(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want one entry per shard, got %v", got)
	}
	if got["shard0/estimate"].P50 != 2 || got["shard1/estimate"].P50 != 4 {
		t.Fatalf("per-shard summaries: %v", got)
	}
}

// TestFetchServerLatenciesEmpty: a body with no touched endpoints is an
// error (the caller warns and omits the section) rather than an empty map
// that would serialize as a lie.
func TestFetchServerLatenciesEmpty(t *testing.T) {
	srv := statsServer(t, `{"endpoints": {}}`)
	if _, err := fetchServerLatencies(srv.Client(), srv.URL); err == nil {
		t.Fatal("empty stats body accepted")
	}
}

func traceServer(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestFetchSlowQueries: the trace dump keeps the k slowest records,
// slowest first.
func TestFetchSlowQueries(t *testing.T) {
	srv := traceServer(t, `{
		"sample_rate": 4,
		"records": [
			{"endpoint": "estimate", "u": 1, "v": 2, "latency_us": 5},
			{"endpoint": "estimate", "u": 3, "v": 4, "latency_us": 90, "cross": true},
			{"endpoint": "estimate", "u": 5, "v": 6, "latency_us": 40}
		]
	}`)
	got, err := fetchSlowQueries(srv.Client(), srv.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 records, got %v", got)
	}
	if got[0].LatencyUs != 90 || !got[0].Cross || got[1].LatencyUs != 40 {
		t.Fatalf("slowest-first order broken: %+v", got)
	}
}

// TestFetchSlowQueriesDisabled: a server with tracing off reports an
// actionable error instead of an empty dump.
func TestFetchSlowQueriesDisabled(t *testing.T) {
	srv := traceServer(t, `{"sample_rate": 0, "records": []}`)
	if _, err := fetchSlowQueries(srv.Client(), srv.URL, 3); err == nil {
		t.Fatal("disabled tracing accepted")
	}
}
