package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// objectServer fakes the server's object surface: /publish and
// /unpublish count calls (failing the first `publishFail` publishes
// with the given code), /lookup answers a fixed certified result or the
// configured error.
type objectServer struct {
	publishes, unpublishes atomic.Int64
	publishFail            int64
	failCode               string
	lookupStatus           int
	lookupCode             string
}

func (o *objectServer) start(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/publish":
			if n := o.publishes.Add(1); n <= o.publishFail {
				w.WriteHeader(http.StatusBadRequest)
				fmt.Fprintf(w, `{"error":"injected","code":%q}`, o.failCode)
				return
			}
			fmt.Fprint(w, `{"object":"obj-00","node":3,"stable":3,"replicas":1}`)
		case "/unpublish":
			o.unpublishes.Add(1)
			fmt.Fprint(w, `{"object":"obj-00","node":3,"stable":3,"replicas":1}`)
		case "/lookup":
			if o.lookupStatus != 0 {
				w.WriteHeader(o.lookupStatus)
				fmt.Fprintf(w, `{"error":"injected","code":%q}`, o.lookupCode)
				return
			}
			from := r.URL.Query().Get("from")
			// Echo the origin as the answering replica at distance zero,
			// so planted self-lookups validate.
			fmt.Fprintf(w, `{"object":"x","node":%s,"dist":0,"hops":1,"scanned":1,"replicas":2}`, from)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestSeedObjectsRetriesDormantIds: an out_of_range publish (a dormant
// global id under fleet churn) redraws instead of failing the seed.
func TestSeedObjectsRetriesDormantIds(t *testing.T) {
	o := &objectServer{publishFail: 3, failCode: "out_of_range"}
	srv := o.start(t)
	pos, err := seedObjects(srv.Client(), srv.URL, 64, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != objCount {
		t.Fatalf("seeded %d objects, want %d", len(pos), objCount)
	}
	if got := o.publishes.Load(); got != int64(objCount)+3 {
		t.Fatalf("server saw %d publishes, want %d", got, objCount+3)
	}
}

// TestSeedObjectsFailsOnHardError: any non-race publish failure aborts
// the seed (the run must not start against a broken object layer).
func TestSeedObjectsFailsOnHardError(t *testing.T) {
	o := &objectServer{publishFail: 1 << 30, failCode: "internal"}
	srv := o.start(t)
	if _, err := seedObjects(srv.Client(), srv.URL, 64, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("hard seed failure accepted")
	}
}

// TestDoLookupVerifiesSelfLookup: a lookup planted at an owned object's
// position must answer that node at distance zero — the mock does, so
// the sample succeeds; a certified answer with replicas<1 would fail.
func TestDoLookupSucceeds(t *testing.T) {
	o := &objectServer{}
	srv := o.start(t)
	g := &generator{base: srv.URL, retries: 1, objFrac: 0.5, objClients: 1}
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, zipfS, 1, objCount-1)
	pos := make([]int, objCount)
	for i := range pos {
		pos[i] = i
	}
	for i := 0; i < 32; i++ {
		s := g.doLookup(srv.Client(), 64, rng, zipf, pos, 0, i%2 == 0)
		if s.err != nil || s.status != http.StatusOK {
			t.Fatalf("lookup %d: %+v", i, s)
		}
	}
}

// TestDoLookupChurnRaceTolerance: 404 not_found is a tolerated race
// under churn (a move racing a republish) but a hard failure otherwise.
func TestDoLookupChurnRaceTolerance(t *testing.T) {
	o := &objectServer{lookupStatus: http.StatusNotFound, lookupCode: "not_found"}
	srv := o.start(t)
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, zipfS, 1, objCount-1)
	pos := make([]int, objCount)

	churned := &generator{base: srv.URL, verify: true, objClients: 1}
	if s := churned.doLookup(srv.Client(), 64, rng, zipf, pos, 0, false); s.err != nil || !s.stale {
		t.Fatalf("churn-mode 404: %+v, want tolerated stale", s)
	}
	static := &generator{base: srv.URL, objClients: 1}
	if s := static.doLookup(srv.Client(), 64, rng, zipf, pos, 0, false); s.err == nil || s.stale {
		t.Fatalf("static-mode 404: %+v, want error", s)
	}
}

// TestDoMovePublishesThenUnpublishes: a move lands the new replica
// before retiring the old one and updates the remembered position.
func TestDoMovePublishesThenUnpublishes(t *testing.T) {
	o := &objectServer{}
	srv := o.start(t)
	g := &generator{base: srv.URL, objClients: 1}
	pos := make([]int, objCount)
	for i := range pos {
		pos[i] = 63 // never equals the drawn next node below (n=32)
	}
	s := g.doMove(srv.Client(), 32, rand.New(rand.NewSource(4)), pos, 5)
	if s.err != nil || s.status != http.StatusOK {
		t.Fatalf("move: %+v", s)
	}
	if o.publishes.Load() != 1 || o.unpublishes.Load() != 1 {
		t.Fatalf("server saw %d publishes, %d unpublishes", o.publishes.Load(), o.unpublishes.Load())
	}
	if pos[5] == 63 {
		t.Fatal("position not advanced")
	}
}

// TestFetchObjectsReport prefers the fleet body and falls back to the
// single-engine body.
func TestFetchObjectsReport(t *testing.T) {
	for _, mode := range []string{"single", "fleet"} {
		mode := mode
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				mode: objectsReport{Objects: 7, Lookups: 99},
			})
		}))
		got, err := fetchObjectsReport(srv.Client(), srv.URL)
		srv.Close()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got.Objects != 7 || got.Lookups != 99 {
			t.Fatalf("%s: %+v", mode, got)
		}
	}
}
