// Command ringload is the closed-loop load generator for cmd/ringsrv:
// a configurable number of clients issue queries back-to-back (each
// client waits for its response before sending the next request) against
// a running server, drawn from a weighted endpoint mix, for a fixed
// duration. It reports per-endpoint throughput and latency percentiles,
// and exits non-zero if any request failed or returned a non-200 status
// — which is what lets CI use it as an end-to-end smoke check.
//
//	ringload -addr http://127.0.0.1:8390 -clients 8 -duration 5s
//	ringload -addr http://127.0.0.1:8390 -mix estimate=6,batch=1,nearest=2,route=1 -json
//	ringload -addr http://127.0.0.1:8390 -churn 3 -clients 4 -duration 5s
//
// The node-id range and the set of endpoints the server actually offers
// are discovered from /healthz; mix entries for endpoints the snapshot
// does not serve are dropped with a warning.
//
// -churn RATE drives the server's churn admin endpoints (POST /join,
// POST /leave, needs ringsrv -churn) at RATE mutations per second while
// the query clients keep running — the end-to-end smoke of the
// incremental repair + delta-swap path. In churn mode ringload also
// verifies what it can from the protocol alone: every /batch response
// must carry one consistent snapshot version across its results, and
// every estimate with u == v must answer exactly zero; a violation is
// an "estimate mismatch" and fails the run. Because the node-id range
// shrinks on /leave, a query racing a swap can 400 with the
// machine-readable code "out_of_range" (and mutations can bounce off
// "at_capacity"/"below_floor"); those are counted as tolerated churn
// races, not errors (every other non-200 still fails the run).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringload:", err)
		os.Exit(1)
	}
}

// health mirrors ringsrv's /healthz body (kept in sync by the CI smoke
// run; ringload deliberately has no compile-time dependency on the
// server so it can drive any deployment speaking the same protocol).
type health struct {
	OK       bool   `json:"ok"`
	Version  int64  `json:"version"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Routing  bool   `json:"routing"`
	Overlay  bool   `json:"overlay"`
}

// sample is one completed request.
type sample struct {
	endpoint  string
	latencyMs float64
	status    int
	err       error
	// stale marks a 400 caused by a node id that fell out of range
	// under churn — an expected race with a shrink swap, not a failure.
	stale bool
}

// mixEntry is one weighted endpoint of the query mix.
type mixEntry struct {
	endpoint string
	weight   int
}

func parseMix(raw string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightRaw, found := strings.Cut(part, "=")
		weight := 1
		if found {
			w, err := strconv.Atoi(weightRaw)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
			weight = w
		}
		switch name {
		case "estimate", "batch", "nearest", "route":
		default:
			return nil, fmt.Errorf("unknown mix endpoint %q (want estimate|batch|nearest|route)", name)
		}
		if weight > 0 {
			mix = append(mix, mixEntry{endpoint: name, weight: weight})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty query mix")
	}
	return mix, nil
}

func run() error {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8390", "server base URL")
		clients   = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration  = flag.Duration("duration", 5*time.Second, "how long to generate load")
		mixRaw    = flag.String("mix", "estimate=6,batch=1,nearest=2,route=1", "weighted endpoint mix")
		batchSize = flag.Int("batch", 16, "pairs per /batch request")
		seed      = flag.Int64("seed", 1, "query-stream seed")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		churnRate = flag.Float64("churn", 0, "mutations per second against /join and /leave (0 disables; needs ringsrv -churn)")
		joinBias  = flag.Float64("churn-bias", 0.5, "probability a mutation is a join")
	)
	flag.Parse()

	mix, err := parseMix(*mixRaw)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *clients
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	h, err := fetchHealth(client, base)
	if err != nil {
		return err
	}
	mix = pruneMix(mix, h)

	// Expand weights into a pick table once; clients index it uniformly.
	var picks []string
	for _, m := range mix {
		for i := 0; i < m.weight; i++ {
			picks = append(picks, m.endpoint)
		}
	}

	// curN tracks the live node count: the churner updates it from every
	// mutation response, so query clients shrink their id range promptly
	// after a leave (a short stale window remains and is tolerated).
	var curN atomic.Int64
	curN.Store(int64(h.N))

	start := time.Now()
	deadline := start.Add(*duration)
	results := make([][]sample, *clients+1)
	var wg sync.WaitGroup
	verify := *churnRate > 0
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for time.Now().Before(deadline) {
				endpoint := picks[rng.Intn(len(picks))]
				n := int(curN.Load())
				results[c] = append(results[c], doRequest(client, base, endpoint, n, *batchSize, rng, verify))
			}
		}(c)
	}
	if verify {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 7919))
			for time.Now().Before(deadline) {
				time.Sleep(time.Duration(rng.ExpFloat64() / *churnRate * float64(time.Second)))
				if !time.Now().Before(deadline) {
					return
				}
				endpoint := "leave"
				if rng.Float64() < *joinBias {
					endpoint = "join"
				}
				s, n := doChurn(client, base, endpoint)
				if n > 0 {
					curN.Store(int64(n))
				}
				results[*clients] = append(results[*clients], s)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := buildReport(results, h, *clients, elapsed)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		printReport(report)
	}
	if report.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", report.Errors, report.Requests)
	}
	return nil
}

func fetchHealth(client *http.Client, base string) (health, error) {
	var h health
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	if !h.OK || h.N < 2 {
		return h, fmt.Errorf("healthz: server not ready: %+v", h)
	}
	return h, nil
}

func pruneMix(mix []mixEntry, h health) []mixEntry {
	kept := mix[:0]
	for _, m := range mix {
		if (m.endpoint == "nearest" && !h.Overlay) || (m.endpoint == "route" && !h.Routing) {
			fmt.Fprintf(os.Stderr, "ringload: snapshot does not serve %q, dropping it from the mix\n", m.endpoint)
			continue
		}
		kept = append(kept, m)
	}
	if len(kept) == 0 {
		kept = append(kept, mixEntry{endpoint: "estimate", weight: 1})
	}
	return kept
}

func doRequest(client *http.Client, base, endpoint string, n, batchSize int, rng *rand.Rand, verify bool) sample {
	var (
		resp     *http.Response
		err      error
		selfPair bool
	)
	start := time.Now()
	switch endpoint {
	case "estimate":
		u, v := rng.Intn(n), rng.Intn(n)
		if verify && rng.Intn(8) == 0 {
			v = u // planted self-pair: the answer must be exactly zero
		}
		selfPair = u == v
		resp, err = client.Get(fmt.Sprintf("%s/estimate?u=%d&v=%d", base, u, v))
	case "batch":
		type pair struct {
			U int `json:"u"`
			V int `json:"v"`
		}
		pairs := make([]pair, batchSize)
		for i := range pairs {
			pairs[i] = pair{U: rng.Intn(n), V: rng.Intn(n)}
		}
		body, merr := json.Marshal(map[string]any{"pairs": pairs})
		if merr != nil {
			return sample{endpoint: endpoint, err: merr}
		}
		resp, err = client.Post(base+"/batch", "application/json", bytes.NewReader(body))
	case "nearest":
		resp, err = client.Get(fmt.Sprintf("%s/nearest?target=%d", base, rng.Intn(n)))
	case "route":
		resp, err = client.Get(fmt.Sprintf("%s/route?src=%d&dst=%d", base, rng.Intn(n), rng.Intn(n)))
	}
	s := sample{endpoint: endpoint, latencyMs: float64(time.Since(start)) / float64(time.Millisecond)}
	if err != nil {
		s.err = err
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		if verify && resp.StatusCode == http.StatusBadRequest && errCode(resp.Body) == "out_of_range" {
			s.stale = true // raced a shrink swap; expected under churn
			return s
		}
		s.err = fmt.Errorf("status %d", resp.StatusCode)
		return s
	}
	if !verify {
		io.Copy(io.Discard, resp.Body)
		return s
	}
	// Churn-mode protocol checks ("estimate mismatch" failures).
	switch endpoint {
	case "estimate":
		var res struct {
			Upper float64 `json:"upper"`
			OK    bool    `json:"ok"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
			s.err = fmt.Errorf("estimate body: %v", derr)
			return s
		}
		if selfPair && (res.Upper != 0 || !res.OK) {
			s.err = fmt.Errorf("estimate mismatch: self-pair answered upper=%v ok=%v", res.Upper, res.OK)
		}
	case "batch":
		var res struct {
			Results []struct {
				Version int64 `json:"version"`
			} `json:"results"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
			s.err = fmt.Errorf("batch body: %v", derr)
			return s
		}
		for i := 1; i < len(res.Results); i++ {
			if res.Results[i].Version != res.Results[0].Version {
				s.err = fmt.Errorf("estimate mismatch: batch split across snapshot versions %d and %d",
					res.Results[0].Version, res.Results[i].Version)
				break
			}
		}
	default:
		io.Copy(io.Discard, resp.Body)
	}
	return s
}

// errCode extracts the machine-readable code of an error response.
func errCode(body io.Reader) string {
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(io.LimitReader(body, 1<<12)).Decode(&eb); err != nil {
		return ""
	}
	return eb.Code
}

// doChurn issues one mutation and reports the server's new node count
// (0 when unavailable).
func doChurn(client *http.Client, base, endpoint string) (sample, int) {
	start := time.Now()
	resp, err := client.Post(base+"/"+endpoint, "application/json", strings.NewReader("{}"))
	s := sample{endpoint: endpoint, latencyMs: float64(time.Since(start)) / float64(time.Millisecond)}
	if err != nil {
		s.err = err
		return s, 0
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		// Hitting the capacity ceiling or the MinNodes floor is a trace
		// artifact, not a server failure (the server says which via the
		// machine-readable code field).
		if resp.StatusCode == http.StatusBadRequest {
			switch errCode(resp.Body) {
			case "at_capacity", "below_floor":
				s.stale = true
				return s, 0
			}
		}
		s.err = fmt.Errorf("status %d", resp.StatusCode)
		return s, 0
	}
	var res struct {
		N int `json:"n"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
		s.err = fmt.Errorf("churn body: %v", derr)
		return s, 0
	}
	return s, res.N
}

// EndpointReport summarizes one endpoint's traffic.
type EndpointReport struct {
	Requests  int           `json:"requests"`
	Errors    int           `json:"errors"`
	Stale     int           `json:"stale,omitempty"`
	QPS       float64       `json:"qps"`
	LatencyMs stats.Summary `json:"latency_ms"`
}

// Report is the machine-readable run summary (-json emits exactly this).
type Report struct {
	Workload  string  `json:"workload"`
	N         int     `json:"n"`
	Version   int64   `json:"version"`
	Clients   int     `json:"clients"`
	DurationS float64 `json:"duration_sec"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	// Stale counts tolerated churn races: out-of-range queries right
	// after a shrink swap, and mutations refused at the capacity or
	// MinNodes bounds. They are excluded from Errors.
	Stale     int                       `json:"stale,omitempty"`
	QPS       float64                   `json:"qps"`
	Endpoints map[string]EndpointReport `json:"endpoints"`
}

func buildReport(results [][]sample, h health, clients int, elapsed time.Duration) Report {
	rep := Report{
		Workload:  h.Workload,
		N:         h.N,
		Version:   h.Version,
		Clients:   clients,
		DurationS: elapsed.Seconds(),
		Endpoints: map[string]EndpointReport{},
	}
	lats := map[string][]float64{}
	for _, rs := range results {
		for _, s := range rs {
			ep := rep.Endpoints[s.endpoint]
			ep.Requests++
			if s.err != nil {
				ep.Errors++
			}
			if s.stale {
				ep.Stale++
			}
			rep.Endpoints[s.endpoint] = ep
			lats[s.endpoint] = append(lats[s.endpoint], s.latencyMs)
			rep.Requests++
			if s.err != nil {
				rep.Errors++
			}
			if s.stale {
				rep.Stale++
			}
		}
	}
	for name, ep := range rep.Endpoints {
		ep.QPS = float64(ep.Requests) / elapsed.Seconds()
		ep.LatencyMs = stats.Summarize(lats[name])
		rep.Endpoints[name] = ep
	}
	rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	return rep
}

func printReport(rep Report) {
	fmt.Printf("ringload: %s (n=%d, snapshot v%d), %d clients, %.1fs\n",
		rep.Workload, rep.N, rep.Version, rep.Clients, rep.DurationS)
	tb := stats.NewTable("endpoint", "requests", "errors", "qps", "p50 ms", "p95 ms", "p99 ms", "max ms")
	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := rep.Endpoints[name]
		tb.AddRow(name, ep.Requests, ep.Errors, ep.QPS,
			ep.LatencyMs.P50, ep.LatencyMs.P95, ep.LatencyMs.P99, ep.LatencyMs.Max)
	}
	fmt.Print(tb.String())
	if rep.Stale > 0 {
		fmt.Printf("total: %d requests, %d errors, %d stale churn races, %.0f qps\n",
			rep.Requests, rep.Errors, rep.Stale, rep.QPS)
		return
	}
	fmt.Printf("total: %d requests, %d errors, %.0f qps\n", rep.Requests, rep.Errors, rep.QPS)
}
