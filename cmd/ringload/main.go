// Command ringload is the closed-loop load generator for cmd/ringsrv:
// a configurable number of clients issue queries back-to-back (each
// client waits for its response before sending the next request) against
// a running server, drawn from a weighted endpoint mix, for a fixed
// duration. It reports per-endpoint throughput and latency percentiles,
// and exits non-zero if any request failed or returned a non-200 status
// — which is what lets CI use it as an end-to-end smoke check.
//
//	ringload -addr http://127.0.0.1:8390 -clients 8 -duration 5s
//	ringload -addr http://127.0.0.1:8390 -mix estimate=6,batch=1,nearest=2,route=1 -json
//	ringload -addr http://127.0.0.1:8390 -churn 3 -clients 4 -duration 5s
//
// The node-id range and the set of endpoints the server actually offers
// are discovered from /healthz; mix entries for endpoints the snapshot
// does not serve are dropped with a warning.
//
// Against a sharded server (ringsrv -shards K; /healthz advertises the
// shard count and the global id universe) ringload drives a mixed
// intra/cross-shard workload: -cross sets the fraction of estimate and
// batch pairs whose endpoints live in different shards (cross-shard
// estimates show up as the "estimate-x" report row, so the split is
// visible per endpoint), routes always stay within one shard (the
// fleet answers cross-shard routes 501 by contract), and under churn
// the batch version check is applied per owning shard.
//
// -churn RATE drives the server's churn admin endpoints (POST /join,
// POST /leave, needs ringsrv -churn) at RATE mutations per second while
// the query clients keep running — the end-to-end smoke of the
// incremental repair + delta-swap path. In churn mode ringload also
// verifies what it can from the protocol alone: every /batch response
// must carry one consistent snapshot version across its results, and
// every estimate with u == v must answer exactly zero; a violation is
// an "estimate mismatch" and fails the run. Because the node-id range
// shrinks on /leave, a query racing a swap can 400 with the
// machine-readable code "out_of_range" (and mutations can bounce off
// "at_capacity"/"below_floor"); those are counted as tolerated churn
// races, not errors (every other non-200 still fails the run).
//
// Queries ride a retry loop tuned for replicated fleets: a transport
// error or a transient 5xx (a shed "overloaded" 503, a mid-restart
// shard's "unavailable" 503 — anything but the permanent 501) is
// retried up to -retries times with exponential backoff (25ms, 50ms,
// ... plus jitter), each attempt a fresh request. A query that
// eventually succeeds counts its attempts under "retries" in the
// report; one that exhausts its budget counts under "gave_up" and is
// an error. Mutations (/join, /leave) never retry: they are not
// idempotent, and replaying one that may have landed would
// double-apply it.
//
// After the run the report is augmented with the server's own view:
// /stats latency reservoirs (a scrape failure is recorded as
// "server_stats_error" in -json output and warned on stderr), and with
// -trace K the K slowest sampled queries from the server's
// /debug/trace ring (needs ringsrv -trace-sample).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringload:", err)
		os.Exit(1)
	}
}

// health mirrors ringsrv's /healthz body (kept in sync by the CI smoke
// run; ringload deliberately has no compile-time dependency on the
// server so it can drive any deployment speaking the same protocol).
// Shards/Universe are set by sharded servers: ids are then global with
// owner = id mod Shards, drawn from [0, Universe) (under churn only a
// subset is active, so out-of-range answers are expected races).
type health struct {
	OK       bool   `json:"ok"`
	Version  int64  `json:"version"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Routing  bool   `json:"routing"`
	Overlay  bool   `json:"overlay"`
	Shards   int    `json:"shards"`
	Universe int    `json:"universe"`
	// Objects advertises the object-location layer; absent on servers
	// without it, which disables -objects with a warning.
	Objects *objHealth `json:"objects"`
}

// sample is one completed request.
type sample struct {
	endpoint  string
	latencyMs float64
	status    int
	err       error
	// stale marks a 400 caused by a node id that fell out of range
	// under churn — an expected race with a shrink swap, not a failure.
	stale bool
	// retries counts extra attempts this request needed (transport
	// errors and transient 5xx answers); gaveUp marks a request that
	// was still failing transiently when the retry budget ran out.
	retries int
	gaveUp  bool
}

// mixEntry is one weighted endpoint of the query mix.
type mixEntry struct {
	endpoint string
	weight   int
}

func parseMix(raw string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightRaw, found := strings.Cut(part, "=")
		weight := 1
		if found {
			w, err := strconv.Atoi(weightRaw)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
			weight = w
		}
		switch name {
		case "estimate", "batch", "nearest", "route":
		default:
			return nil, fmt.Errorf("unknown mix endpoint %q (want estimate|batch|nearest|route)", name)
		}
		if weight > 0 {
			mix = append(mix, mixEntry{endpoint: name, weight: weight})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty query mix")
	}
	return mix, nil
}

func run() error {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8390", "server base URL")
		clients   = flag.Int("clients", 8, "concurrent closed-loop clients")
		duration  = flag.Duration("duration", 5*time.Second, "how long to generate load")
		mixRaw    = flag.String("mix", "estimate=6,batch=1,nearest=2,route=1", "weighted endpoint mix")
		batchSize = flag.Int("batch", 16, "pairs per /batch request")
		seed      = flag.Int64("seed", 1, "query-stream seed")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		churnRate = flag.Float64("churn", 0, "mutations per second against /join and /leave (0 disables; needs ringsrv -churn)")
		joinBias  = flag.Float64("churn-bias", 0.5, "probability a mutation is a join")
		crossFrac = flag.Float64("cross", 0.5, "fraction of estimate/batch pairs spanning shards (sharded servers only)")
		retries   = flag.Int("retries", 3, "max retries per query on transport errors and transient 5xx (0 disables; mutations never retry)")
		traceTop  = flag.Int("trace", 0, "after the run, report the K slowest sampled queries from /debug/trace (needs ringsrv -trace-sample)")
		objFrac   = flag.Float64("objects", 0, "fraction of query traffic hitting the object endpoints: Zipf /lookup, moves, and a mid-run flash crowd (0 disables)")
	)
	flag.Parse()

	mix, err := parseMix(*mixRaw)
	if err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *clients
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	h, err := fetchHealth(client, base)
	if err != nil {
		return err
	}
	mix = pruneMix(mix, h)

	// Expand weights into a pick table once; clients index it uniformly.
	var picks []string
	for _, m := range mix {
		for i := 0; i < m.weight; i++ {
			picks = append(picks, m.endpoint)
		}
	}

	// curN tracks the live node count: the churner updates it from every
	// mutation response, so query clients shrink their id range promptly
	// after a leave (a short stale window remains and is tolerated).
	// Sharded servers advertise a fixed global id universe instead; ids
	// are drawn from it and inactive ones answer out_of_range (an
	// expected race under churn, tolerated like stale ranges).
	var curN atomic.Int64
	curN.Store(int64(h.N))

	g := &generator{
		base:      base,
		batchSize: *batchSize,
		verify:    *churnRate > 0,
		shards:    h.Shards,
		universe:  h.Universe,
		initialN:  h.N,
		cross:     *crossFrac,
		retries:   *retries,
	}

	// Object traffic: seed the catalog before the clients start, so
	// every /lookup has something to find.
	var objPos []int
	if *objFrac > 0 {
		if h.Objects == nil {
			fmt.Fprintln(os.Stderr, "ringload: server does not advertise an object layer, disabling -objects")
		} else {
			objPos, err = seedObjects(client, base, g.idRange(h.N), rand.New(rand.NewSource(*seed+31)))
			if err != nil {
				return err
			}
			g.objFrac = *objFrac
			g.objClients = *clients
		}
	}

	start := time.Now()
	deadline := start.Add(*duration)
	// The flash-crowd phase is the middle third of the run: every lookup
	// piles onto one object, the popularity spike the overlay must ride.
	flashStart := start.Add(*duration / 3)
	flashEnd := start.Add(2 * *duration / 3)
	results := make([][]sample, *clients+1)
	var wg sync.WaitGroup
	verify := g.verify
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			var (
				zipf *rand.Zipf
				pos  []int
			)
			if g.objFrac > 0 {
				zipf = rand.NewZipf(rng, zipfS, 1, objCount-1)
				pos = append([]int(nil), objPos...)
			}
			for time.Now().Before(deadline) {
				n := g.idRange(int(curN.Load()))
				if g.objFrac > 0 && rng.Float64() < g.objFrac {
					now := time.Now()
					flash := now.After(flashStart) && now.Before(flashEnd)
					if idx := rng.Intn(objCount); idx%g.objClients == c && rng.Intn(8) == 0 {
						results[c] = append(results[c], g.doMove(client, n, rng, pos, idx))
					} else {
						results[c] = append(results[c], g.doLookup(client, n, rng, zipf, pos, c, flash))
					}
					continue
				}
				endpoint := picks[rng.Intn(len(picks))]
				results[c] = append(results[c], g.doRequest(client, endpoint, n, rng))
			}
		}(c)
	}
	if verify {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 7919))
			for time.Now().Before(deadline) {
				time.Sleep(time.Duration(rng.ExpFloat64() / *churnRate * float64(time.Second)))
				if !time.Now().Before(deadline) {
					return
				}
				endpoint := "leave"
				if rng.Float64() < *joinBias {
					endpoint = "join"
				}
				s, n := doChurn(client, base, endpoint)
				if n > 0 {
					curN.Store(int64(n))
				}
				results[*clients] = append(results[*clients], s)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := buildReport(results, h, *clients, elapsed)
	// Duration-end server-side view: the engine's own latency reservoirs
	// (microseconds, measured inside the serving path — no HTTP or
	// client-loop overhead), keyed like the client-side endpoint rows so
	// BENCH_serve.json and load runs report the same Summary shape. A
	// stats failure degrades the report instead of failing a run whose
	// queries all succeeded.
	if srvLat, err := fetchServerLatencies(client, base); err != nil {
		fmt.Fprintf(os.Stderr, "ringload: server stats unavailable, omitting server_latency_us: %v\n", err)
		report.ServerStatsError = err.Error()
	} else {
		report.ServerLatencyUs = srvLat
	}
	if *traceTop > 0 {
		if slow, err := fetchSlowQueries(client, base, *traceTop); err != nil {
			fmt.Fprintf(os.Stderr, "ringload: trace unavailable, omitting slow_queries: %v\n", err)
		} else {
			report.SlowQueries = slow
		}
	}
	if g.objFrac > 0 {
		if or, err := fetchObjectsReport(client, base); err != nil {
			fmt.Fprintf(os.Stderr, "ringload: objects stats unavailable, omitting objects: %v\n", err)
		} else {
			report.Objects = or
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		printReport(report)
	}
	if report.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", report.Errors, report.Requests)
	}
	return nil
}

// serverStats mirrors the slice of ringsrv's /stats body ringload
// consumes (like health, kept in sync by the CI smoke run rather than a
// compile-time dependency): per-endpoint latency reservoirs, nested one
// engine report per shard on a fleet.
type serverStats struct {
	Endpoints map[string]serverEndpoint `json:"endpoints"`
	PerShard  []struct {
		Shard  int `json:"shard"`
		Engine struct {
			Endpoints map[string]serverEndpoint `json:"endpoints"`
		} `json:"engine"`
	} `json:"per_shard"`
}

type serverEndpoint struct {
	Count     int64         `json:"count"`
	LatencyUs stats.Summary `json:"latency_us"`
}

// fetchServerLatencies snapshots the server's per-endpoint latency
// reservoirs at the end of a run. Single engines yield one Summary per
// endpoint; fleets yield one per shard ("shard0/estimate", ...) because
// reservoir percentiles cannot be merged across shards after the fact.
// Endpoints the run never touched (count 0) are dropped.
func fetchServerLatencies(client *http.Client, base string) (map[string]stats.Summary, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var st serverStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	out := map[string]stats.Summary{}
	for name, ep := range st.Endpoints {
		if ep.Count > 0 {
			out[name] = ep.LatencyUs
		}
	}
	for _, sh := range st.PerShard {
		for name, ep := range sh.Engine.Endpoints {
			if ep.Count > 0 {
				out[fmt.Sprintf("shard%d/%s", sh.Shard, name)] = ep.LatencyUs
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("stats: no endpoint latency reservoirs in response")
	}
	return out, nil
}

// traceSample mirrors the slice of ringsrv's /debug/trace records
// ringload consumes (no compile-time dependency, like health and
// serverStats).
type traceSample struct {
	Endpoint  string  `json:"endpoint"`
	U         int     `json:"u"`
	V         int     `json:"v"`
	Cached    bool    `json:"cached,omitempty"`
	Cross     bool    `json:"cross,omitempty"`
	Err       string  `json:"err,omitempty"`
	LatencyUs float64 `json:"latency_us"`
}

// fetchSlowQueries drains the server's sampled trace ring and keeps the
// k slowest records, slowest first — the post-run slow-query report.
// Requires the server to run with -trace-sample; an empty ring is an
// error so the caller warns instead of silently reporting nothing.
func fetchSlowQueries(client *http.Client, base string, k int) ([]traceSample, error) {
	resp, err := client.Get(base + "/debug/trace")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace: status %d", resp.StatusCode)
	}
	var body struct {
		SampleRate int           `json:"sample_rate"`
		Records    []traceSample `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(body.Records) == 0 {
		if body.SampleRate == 0 {
			return nil, fmt.Errorf("trace: sampling disabled on the server (start ringsrv with -trace-sample)")
		}
		return nil, fmt.Errorf("trace: ring is empty")
	}
	sort.Slice(body.Records, func(i, j int) bool {
		return body.Records[i].LatencyUs > body.Records[j].LatencyUs
	})
	if k < len(body.Records) {
		body.Records = body.Records[:k]
	}
	return body.Records, nil
}

func fetchHealth(client *http.Client, base string) (health, error) {
	var h health
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return h, fmt.Errorf("healthz: %w", err)
	}
	if !h.OK || h.N < 2 {
		return h, fmt.Errorf("healthz: server not ready: %+v", h)
	}
	return h, nil
}

func pruneMix(mix []mixEntry, h health) []mixEntry {
	kept := mix[:0]
	for _, m := range mix {
		if (m.endpoint == "nearest" && !h.Overlay) || (m.endpoint == "route" && !h.Routing) {
			fmt.Fprintf(os.Stderr, "ringload: snapshot does not serve %q, dropping it from the mix\n", m.endpoint)
			continue
		}
		kept = append(kept, m)
	}
	if len(kept) == 0 {
		kept = append(kept, mixEntry{endpoint: "estimate", weight: 1})
	}
	return kept
}

// generator shapes one client's requests: the id universe, the shard
// partition (owner = id mod shards, mirroring the server's static
// round-robin rule) and the target cross-shard fraction.
type generator struct {
	base      string
	batchSize int
	verify    bool
	shards    int
	universe  int
	// initialN is the boot-time active count (health.N), the prefix of
	// the universe that started active on a churned sharded server.
	initialN int
	cross    float64
	// retries is the per-query retry budget for transient failures.
	retries int
	// objFrac routes that fraction of each client's requests to the
	// object endpoints; objClients partitions move ownership (object i
	// is moved only by client i mod objClients, so remembered positions
	// stay true outside churn).
	objFrac    float64
	objClients int
}

// retryBase is the first retry's backoff; attempt i waits
// retryBase<<i plus up to 50% jitter.
const retryBase = 25 * time.Millisecond

// transientStatus reports whether a status is worth retrying: 5xx
// covers shed load ("overloaded"), a shard with every replica dark
// ("unavailable") and mid-restart windows — all states a later attempt
// can outlive. 501 is the server's permanent "not implemented"
// contract answer and is excluded.
func transientStatus(code int) bool {
	return code >= 500 && code != http.StatusNotImplemented
}

// withRetry issues one query through the retry loop. Every attempt is
// a fresh request (issue builds one from scratch, so a consumed body
// reader is never replayed). Only queries come through here; mutations
// are not idempotent and never retry.
func (g *generator) withRetry(rng *rand.Rand, s *sample, issue func() (*http.Response, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := issue()
		transient := err != nil || transientStatus(resp.StatusCode)
		if !transient || attempt >= g.retries {
			if transient && g.retries > 0 {
				s.gaveUp = true
			}
			return resp, err
		}
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
			resp.Body.Close()
		}
		s.retries++
		backoff := retryBase << attempt
		time.Sleep(backoff + time.Duration(rng.Int63n(int64(backoff)/2+1)))
	}
}

// idRange picks the id space queries draw from: the fixed global
// universe on sharded servers, the live node count otherwise.
func (g *generator) idRange(curN int) int {
	if g.universe > 0 {
		return g.universe
	}
	return curN
}

// pickPair draws one query pair, honoring the cross fraction against
// a sharded server; cross reports whether the pair spans shards.
func (g *generator) pickPair(rng *rand.Rand, n int) (u, v int, cross bool) {
	u = rng.Intn(n)
	if g.shards <= 1 || n <= g.shards {
		return u, rng.Intn(n), false
	}
	if rng.Float64() < g.cross {
		for v = rng.Intn(n); v%g.shards == u%g.shards; v = rng.Intn(n) {
		}
		return u, v, true
	}
	return u, g.sameShard(rng, u, n), false
}

// sameShard draws an id congruent to u modulo the shard count.
func (g *generator) sameShard(rng *rand.Rand, u, n int) int {
	r := u % g.shards
	m := (n - r + g.shards - 1) / g.shards // ids ≡ r (mod shards) below n
	return rng.Intn(m)*g.shards + r
}

// batchRange narrows batch pair draws on a churned sharded server to
// the boot-time active prefix: a batch fails whole on any inactive
// id, and a draw from the full universe (half dormant at the default
// capacity) would make out_of_range the near-certain outcome for
// every batch — the per-shard version check would never run. Ids
// below the boot-time active count stay mostly active (only leaves
// retire them), so most batches succeed, while single estimates keep
// drawing from the full universe and exercising the inactive-id path.
func (g *generator) batchRange(n int) int {
	if g.shards > 1 && g.verify && g.initialN > 0 && g.initialN < n {
		return g.initialN
	}
	return n
}

func (g *generator) doRequest(client *http.Client, endpoint string, n int, rng *rand.Rand) sample {
	var (
		issue    func() (*http.Response, error)
		selfPair bool
	)
	name := endpoint
	switch endpoint {
	case "estimate":
		u, v, cross := g.pickPair(rng, n)
		if g.verify && !cross && rng.Intn(8) == 0 {
			v = u // planted self-pair: the answer must be exactly zero
		}
		selfPair = u == v
		if cross {
			name = "estimate-x" // the report's intra/cross split
		}
		url := fmt.Sprintf("%s/estimate?u=%d&v=%d", g.base, u, v)
		issue = func() (*http.Response, error) { return client.Get(url) }
	case "batch":
		type pair struct {
			U int `json:"u"`
			V int `json:"v"`
		}
		pairs := make([]pair, g.batchSize)
		nb := g.batchRange(n)
		for i := range pairs {
			u, v, _ := g.pickPair(rng, nb)
			pairs[i] = pair{U: u, V: v}
		}
		body, merr := json.Marshal(map[string]any{"pairs": pairs})
		if merr != nil {
			return sample{endpoint: endpoint, err: merr}
		}
		issue = func() (*http.Response, error) {
			return client.Post(g.base+"/batch", "application/json", bytes.NewReader(body))
		}
	case "nearest":
		url := fmt.Sprintf("%s/nearest?target=%d", g.base, rng.Intn(n))
		issue = func() (*http.Response, error) { return client.Get(url) }
	case "route":
		// Cross-shard routes are 501 by contract; always draw the
		// destination from the source's shard.
		src := rng.Intn(n)
		dst := src
		if g.shards > 1 && n > g.shards {
			dst = g.sameShard(rng, src, n)
		} else {
			dst = rng.Intn(n)
		}
		url := fmt.Sprintf("%s/route?src=%d&dst=%d", g.base, src, dst)
		issue = func() (*http.Response, error) { return client.Get(url) }
	}
	s := sample{endpoint: name}
	start := time.Now()
	resp, err := g.withRetry(rng, &s, issue)
	// Latency is client-perceived: a retried request's backoffs count.
	s.latencyMs = float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		s.err = err
		return s
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		if g.verify && resp.StatusCode == http.StatusBadRequest && errCode(resp.Body) == "out_of_range" {
			s.stale = true // raced a shrink swap; expected under churn
			return s
		}
		s.err = fmt.Errorf("status %d", resp.StatusCode)
		return s
	}
	if !g.verify {
		io.Copy(io.Discard, resp.Body)
		return s
	}
	// Churn-mode protocol checks ("estimate mismatch" failures).
	switch endpoint {
	case "estimate":
		var res struct {
			Upper float64 `json:"upper"`
			OK    bool    `json:"ok"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
			s.err = fmt.Errorf("estimate body: %v", derr)
			return s
		}
		if selfPair && (res.Upper != 0 || !res.OK) {
			s.err = fmt.Errorf("estimate mismatch: self-pair answered upper=%v ok=%v", res.Upper, res.OK)
		}
	case "batch":
		var res struct {
			Results []struct {
				Version int64 `json:"version"`
				UShard  int   `json:"ushard"`
				Cross   bool  `json:"cross"`
			} `json:"results"`
		}
		if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
			s.err = fmt.Errorf("batch body: %v", derr)
			return s
		}
		// One batch must answer from one snapshot per shard: on a
		// sharded server versions are per-shard (keyed by the owning
		// shard of u), on a single engine everything shares shard 0.
		versionOf := map[int]int64{}
		for i, r := range res.Results {
			if r.Cross {
				continue // beacon answers span two shards' states
			}
			if v, seen := versionOf[r.UShard]; seen && v != r.Version {
				s.err = fmt.Errorf("estimate mismatch: batch result %d split shard %d across snapshot versions %d and %d",
					i, r.UShard, v, r.Version)
				break
			}
			versionOf[r.UShard] = r.Version
		}
	default:
		io.Copy(io.Discard, resp.Body)
	}
	return s
}

// errCode extracts the machine-readable code of an error response.
func errCode(body io.Reader) string {
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.NewDecoder(io.LimitReader(body, 1<<12)).Decode(&eb); err != nil {
		return ""
	}
	return eb.Code
}

// doChurn issues one mutation and reports the server's new node count
// (0 when unavailable).
func doChurn(client *http.Client, base, endpoint string) (sample, int) {
	start := time.Now()
	resp, err := client.Post(base+"/"+endpoint, "application/json", strings.NewReader("{}"))
	s := sample{endpoint: endpoint, latencyMs: float64(time.Since(start)) / float64(time.Millisecond)}
	if err != nil {
		s.err = err
		return s, 0
	}
	defer resp.Body.Close()
	s.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		// Hitting the capacity ceiling or the MinNodes floor is a trace
		// artifact, not a server failure (the server says which via the
		// machine-readable code field).
		if resp.StatusCode == http.StatusBadRequest {
			switch errCode(resp.Body) {
			case "at_capacity", "below_floor":
				s.stale = true
				return s, 0
			}
		}
		s.err = fmt.Errorf("status %d", resp.StatusCode)
		return s, 0
	}
	var res struct {
		N int `json:"n"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&res); derr != nil {
		s.err = fmt.Errorf("churn body: %v", derr)
		return s, 0
	}
	return s, res.N
}

// EndpointReport summarizes one endpoint's traffic.
type EndpointReport struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Stale    int `json:"stale,omitempty"`
	// Retries counts extra attempts absorbed by the retry loop; GaveUp
	// counts requests still failing transiently at budget exhaustion
	// (every GaveUp is also an error).
	Retries   int           `json:"retries,omitempty"`
	GaveUp    int           `json:"gave_up,omitempty"`
	QPS       float64       `json:"qps"`
	LatencyMs stats.Summary `json:"latency_ms"`
}

// Report is the machine-readable run summary (-json emits exactly this).
type Report struct {
	Workload  string  `json:"workload"`
	N         int     `json:"n"`
	Version   int64   `json:"version"`
	Clients   int     `json:"clients"`
	DurationS float64 `json:"duration_sec"`
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	// Stale counts tolerated churn races: out-of-range queries right
	// after a shrink swap, and mutations refused at the capacity or
	// MinNodes bounds. They are excluded from Errors.
	Stale int `json:"stale,omitempty"`
	// Retries is the run-wide count of extra attempts the transient
	// retry loop absorbed (a fleet riding out a replica restart shows
	// up here, not in Errors); GaveUp counts queries that exhausted
	// the budget while still failing transiently.
	Retries   int                       `json:"retries,omitempty"`
	GaveUp    int                       `json:"gave_up,omitempty"`
	QPS       float64                   `json:"qps"`
	Endpoints map[string]EndpointReport `json:"endpoints"`
	// ServerLatencyUs is the duration-end snapshot of the server's own
	// per-endpoint latency reservoirs (/stats latency_us, microseconds,
	// measured inside the serving path), keyed by endpoint — prefixed
	// "shardN/" on a fleet. Omitted when /stats was unreachable.
	ServerLatencyUs map[string]stats.Summary `json:"server_latency_us,omitempty"`
	// ServerStatsError records why ServerLatencyUs is absent (the /stats
	// scrape failed), so a -json consumer can distinguish "server-side
	// view unavailable" from "endpoint never touched".
	ServerStatsError string `json:"server_stats_error,omitempty"`
	// SlowQueries is the -trace K dump: the K slowest sampled queries
	// from the server's /debug/trace ring, slowest first. Omitted when
	// tracing was off or the scrape failed.
	SlowQueries []traceSample `json:"slow_queries,omitempty"`
	// Objects is the duration-end /objects/stats scrape (-objects runs
	// only): the server's own lookup/miss/republish counters.
	Objects *objectsReport `json:"objects,omitempty"`
}

func buildReport(results [][]sample, h health, clients int, elapsed time.Duration) Report {
	rep := Report{
		Workload:  h.Workload,
		N:         h.N,
		Version:   h.Version,
		Clients:   clients,
		DurationS: elapsed.Seconds(),
		Endpoints: map[string]EndpointReport{},
	}
	lats := map[string][]float64{}
	for _, rs := range results {
		for _, s := range rs {
			ep := rep.Endpoints[s.endpoint]
			ep.Requests++
			if s.err != nil {
				ep.Errors++
			}
			if s.stale {
				ep.Stale++
			}
			ep.Retries += s.retries
			if s.gaveUp {
				ep.GaveUp++
			}
			rep.Endpoints[s.endpoint] = ep
			lats[s.endpoint] = append(lats[s.endpoint], s.latencyMs)
			rep.Requests++
			if s.err != nil {
				rep.Errors++
			}
			if s.stale {
				rep.Stale++
			}
			rep.Retries += s.retries
			if s.gaveUp {
				rep.GaveUp++
			}
		}
	}
	for name, ep := range rep.Endpoints {
		ep.QPS = float64(ep.Requests) / elapsed.Seconds()
		ep.LatencyMs = stats.Summarize(lats[name])
		rep.Endpoints[name] = ep
	}
	rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	return rep
}

func printReport(rep Report) {
	fmt.Printf("ringload: %s (n=%d, snapshot v%d), %d clients, %.1fs\n",
		rep.Workload, rep.N, rep.Version, rep.Clients, rep.DurationS)
	tb := stats.NewTable("endpoint", "requests", "errors", "qps", "p50 ms", "p95 ms", "p99 ms", "max ms")
	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := rep.Endpoints[name]
		tb.AddRow(name, ep.Requests, ep.Errors, ep.QPS,
			ep.LatencyMs.P50, ep.LatencyMs.P95, ep.LatencyMs.P99, ep.LatencyMs.Max)
	}
	fmt.Print(tb.String())
	line := fmt.Sprintf("total: %d requests, %d errors", rep.Requests, rep.Errors)
	if rep.Stale > 0 {
		line += fmt.Sprintf(", %d stale churn races", rep.Stale)
	}
	if rep.Retries > 0 || rep.GaveUp > 0 {
		line += fmt.Sprintf(", %d retries (%d gave up)", rep.Retries, rep.GaveUp)
	}
	fmt.Printf("%s, %.0f qps\n", line, rep.QPS)
	if rep.Objects != nil {
		fmt.Printf("objects: %d published (%d replicas), %d lookups (%d not found, %d certified misses), %d republishes\n",
			rep.Objects.Objects, rep.Objects.Replicas, rep.Objects.Lookups,
			rep.Objects.NotFound, rep.Objects.Misses, rep.Objects.Republishes)
	}
	if len(rep.SlowQueries) > 0 {
		fmt.Printf("slowest sampled queries (server-side, from /debug/trace):\n")
		for _, s := range rep.SlowQueries {
			line := fmt.Sprintf("  %8.1f us  %s u=%d v=%d", s.LatencyUs, s.Endpoint, s.U, s.V)
			if s.Cross {
				line += " cross"
			}
			if s.Cached {
				line += " cached"
			}
			if s.Err != "" {
				line += " err=" + s.Err
			}
			fmt.Println(line)
		}
	}
}
