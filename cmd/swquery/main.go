// Command swquery samples a small-world model over a synthetic doubling
// metric and runs object-location queries:
//
//	swquery -workload grid -side 8 -model 52a -src 0 -dst 63
//	swquery -workload expline -n 48 -logaspect 300 -model 52b -eval
//	swquery -workload cube -n 64 -eval -json
//
// Models: 52a (greedy), 52b (non-greedy, sqrt(log ∆) degree), structures
// (Kleinberg baseline). Workloads: grid, cube, expline, latency.
// -json switches the output to one machine-readable JSON object
// (scripts and result-comparison tooling consume it; the default stays
// human-readable).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"rings/internal/smallworld"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swquery:", err)
		os.Exit(1)
	}
}

// evalOut is the -eval -json document.
type evalOut struct {
	Model     string  `json:"model"`
	Workload  string  `json:"workload"`
	N         int     `json:"n"`
	OutDegree int     `json:"out_degree"`
	Queries   int     `json:"queries"`
	MaxHops   int     `json:"max_hops"`
	MeanHops  float64 `json:"mean_hops"`
	Sideways  int     `json:"sideways"`
}

// queryOut is the single-query -json document.
type queryOut struct {
	Model    string `json:"model"`
	Workload string `json:"workload"`
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Hops     int    `json:"hops"`
	Sideways int    `json:"sideways"`
	Path     []int  `json:"path"`
}

func run() error {
	var (
		wl      = flag.String("workload", "grid", "grid | cube | expline | latency")
		side    = flag.Int("side", 7, "grid side")
		n       = flag.Int("n", 48, "node count (cube, expline, latency)")
		logA    = flag.Float64("logaspect", 60, "log2 aspect ratio (expline)")
		model   = flag.String("model", "52a", "52a | 52b | structures")
		seed    = flag.Int64("seed", 1, "random seed")
		src     = flag.Int("src", 0, "source node")
		dst     = flag.Int("dst", -1, "target node (-1 = n-1)")
		eval    = flag.Bool("eval", false, "evaluate all ordered pairs")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of the table")
	)
	flag.Parse()

	inst, err := workload.Metric(workload.MetricSpec{
		Name: *wl, Side: *side, N: *n, LogAspect: *logA, Seed: *seed,
	})
	if err != nil {
		return err
	}

	var m smallworld.Model
	switch *model {
	case "52a":
		m, err = smallworld.NewThm52a(inst.Idx, smallworld.DefaultParams(*seed))
	case "52b":
		m, err = smallworld.NewThm52b(inst.Idx, smallworld.DefaultParams(*seed))
	case "structures":
		m, err = smallworld.NewStructures(inst.Idx, 1, false, *seed)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	nn := inst.Idx.N()
	budget := 10*int(math.Ceil(math.Log2(float64(nn)))) + 10
	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	if *eval {
		st, err := smallworld.EvaluateAll(m, nn, 1, budget)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(evalOut{
				Model:     m.Name(),
				Workload:  inst.Name,
				N:         nn,
				OutDegree: m.OutDegree(),
				Queries:   st.Queries,
				MaxHops:   st.MaxHops,
				MeanHops:  st.MeanHops,
				Sideways:  st.Sideways,
			})
		}
		fmt.Printf("%s on %s (n=%d, out-degree %d)\n", m.Name(), inst.Name, nn, m.OutDegree())
		fmt.Printf("  queries        %d\n", st.Queries)
		fmt.Printf("  hops max/mean  %d / %.3f  (log2 n = %.0f)\n",
			st.MaxHops, st.MeanHops, math.Ceil(math.Log2(float64(nn))))
		fmt.Printf("  sideways steps %d (rule **)\n", st.Sideways)
		return nil
	}

	target := *dst
	if target < 0 {
		target = nn - 1
	}
	res, err := smallworld.Query(m, *src, target, budget)
	if err != nil {
		return err
	}
	if *jsonOut {
		return emit(queryOut{
			Model:    m.Name(),
			Workload: inst.Name,
			Src:      *src,
			Dst:      target,
			Hops:     res.Hops,
			Sideways: res.Sideways,
			Path:     res.Path,
		})
	}
	fmt.Printf("%s on %s (n=%d, out-degree %d)\n", m.Name(), inst.Name, nn, m.OutDegree())
	fmt.Printf("  query %d -> %d: %d hops (%d sideways)\n", *src, target, res.Hops, res.Sideways)
	fmt.Printf("  path  %v\n", res.Path)
	return nil
}
