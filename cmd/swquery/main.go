// Command swquery samples a small-world model over a synthetic doubling
// metric and runs object-location queries:
//
//	swquery -workload grid -side 8 -model 52a -src 0 -dst 63
//	swquery -workload expline -n 48 -logaspect 300 -model 52b -eval
//
// Models: 52a (greedy), 52b (non-greedy, sqrt(log ∆) degree), structures
// (Kleinberg baseline). Workloads: grid, cube, expline, latency.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"rings/internal/smallworld"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swquery:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl    = flag.String("workload", "grid", "grid | cube | expline | latency")
		side  = flag.Int("side", 7, "grid side")
		n     = flag.Int("n", 48, "node count (cube, expline, latency)")
		logA  = flag.Float64("logaspect", 60, "log2 aspect ratio (expline)")
		model = flag.String("model", "52a", "52a | 52b | structures")
		seed  = flag.Int64("seed", 1, "random seed")
		src   = flag.Int("src", 0, "source node")
		dst   = flag.Int("dst", -1, "target node (-1 = n-1)")
		eval  = flag.Bool("eval", false, "evaluate all ordered pairs")
	)
	flag.Parse()

	var inst workload.MetricInstance
	var err error
	switch *wl {
	case "grid":
		inst, err = workload.Grid(*side)
	case "cube":
		inst, err = workload.Cube(*n, *seed)
	case "expline":
		inst, err = workload.ExpLine(*n, *logA)
	case "latency":
		inst, err = workload.Latency(*n, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}

	var m smallworld.Model
	switch *model {
	case "52a":
		m, err = smallworld.NewThm52a(inst.Idx, smallworld.DefaultParams(*seed))
	case "52b":
		m, err = smallworld.NewThm52b(inst.Idx, smallworld.DefaultParams(*seed))
	case "structures":
		m, err = smallworld.NewStructures(inst.Idx, 1, false, *seed)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	nn := inst.Idx.N()
	budget := 10*int(math.Ceil(math.Log2(float64(nn)))) + 10
	fmt.Printf("%s on %s (n=%d, out-degree %d)\n", m.Name(), inst.Name, nn, m.OutDegree())

	if *eval {
		st, err := smallworld.EvaluateAll(m, nn, 1, budget)
		if err != nil {
			return err
		}
		fmt.Printf("  queries        %d\n", st.Queries)
		fmt.Printf("  hops max/mean  %d / %.3f  (log2 n = %.0f)\n",
			st.MaxHops, st.MeanHops, math.Ceil(math.Log2(float64(nn))))
		fmt.Printf("  sideways steps %d (rule **)\n", st.Sideways)
		return nil
	}

	target := *dst
	if target < 0 {
		target = nn - 1
	}
	res, err := smallworld.Query(m, *src, target, budget)
	if err != nil {
		return err
	}
	fmt.Printf("  query %d -> %d: %d hops (%d sideways)\n", *src, target, res.Hops, res.Sideways)
	fmt.Printf("  path  %v\n", res.Path)
	return nil
}
