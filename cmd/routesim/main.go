// Command routesim builds a compact routing scheme on a synthetic
// doubling workload and either routes one packet (printing its path) or
// evaluates all pairs:
//
//	routesim -workload gridgraph -side 8 -scheme thm21 -src 0 -dst 63
//	routesim -workload exppath -n 24 -scheme thmb1 -eval
//	routesim -workload geometric -n 40 -eval -json
//
// Schemes: thm21, thm41, thmb1, global (Talwar-style ids), full.
// Workloads: gridgraph, exppath, geometric. -json switches the output to
// one machine-readable JSON object for scripts and result comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rings/internal/routing"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl      = flag.String("workload", "gridgraph", "gridgraph | exppath | geometric")
		side    = flag.Int("side", 7, "grid side (gridgraph)")
		n       = flag.Int("n", 20, "node count (exppath, geometric)")
		base    = flag.Float64("base", 4, "weight base (exppath)")
		radius  = flag.Float64("radius", 25, "connect radius (geometric)")
		scheme  = flag.String("scheme", "thm21", "thm21 | thm41 | thmb1 | global | full")
		delta   = flag.Float64("delta", 0.5, "target stretch slack")
		seed    = flag.Int64("seed", 1, "random seed")
		src     = flag.Int("src", 0, "source node")
		dst     = flag.Int("dst", -1, "target node (-1 = n-1)")
		eval    = flag.Bool("eval", false, "evaluate all pairs instead of one route")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON instead of the table")
	)
	flag.Parse()

	var inst workload.GraphInstance
	var err error
	switch *wl {
	case "gridgraph":
		inst, err = workload.GridGraph(*side, *seed)
	case "exppath":
		inst, err = workload.ExpPath(*n, *base)
	case "geometric":
		inst, err = workload.Geometric(*n, *radius, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}

	var s routing.Scheme
	switch *scheme {
	case "thm21":
		s, err = routing.NewThm21(inst.G, *delta)
	case "thm41":
		s, err = routing.NewThm41(inst.G, *delta)
	case "thmb1":
		s, err = routing.NewThmB1(inst.G, *delta, 0)
	case "global":
		s, err = routing.NewThm21Global(inst.G, *delta)
	case "full":
		s, err = routing.NewFullTable(inst.G)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		return err
	}

	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	if *eval {
		st, err := routing.Evaluate(s, inst.Idx, 1, 80*inst.G.N())
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(struct {
				Scheme        string  `json:"scheme"`
				Workload      string  `json:"workload"`
				N             int     `json:"n"`
				Routes        int     `json:"routes"`
				MaxStretch    float64 `json:"max_stretch"`
				MeanStretch   float64 `json:"mean_stretch"`
				MaxHops       int     `json:"max_hops"`
				MaxTableBits  int     `json:"max_table_bits"`
				MaxLabelBits  int     `json:"max_label_bits"`
				MaxHeaderBits int     `json:"max_header_bits"`
			}{s.Name(), inst.Name, inst.G.N(), st.Routes, st.MaxStretch, st.MeanStretch,
				st.MaxHops, st.MaxTableBits, st.MaxLabelBits, st.MaxHeaderBits})
		}
		fmt.Printf("%s on %s (n=%d)\n", s.Name(), inst.Name, inst.G.N())
		fmt.Printf("  routes           %d\n", st.Routes)
		fmt.Printf("  stretch max/mean %.4f / %.4f\n", st.MaxStretch, st.MeanStretch)
		fmt.Printf("  hops max         %d\n", st.MaxHops)
		fmt.Printf("  table bits max   %d\n", st.MaxTableBits)
		fmt.Printf("  label bits max   %d\n", st.MaxLabelBits)
		fmt.Printf("  header bits max  %d\n", st.MaxHeaderBits)
		return nil
	}

	target := *dst
	if target < 0 {
		target = inst.G.N() - 1
	}
	res, err := routing.Route(s, *src, target, 80*inst.G.N())
	if err != nil {
		return err
	}
	d := inst.Idx.Dist(*src, target)
	stretch := 1.0
	if d > 0 {
		stretch = res.Length / d
	}
	if *jsonOut {
		return emit(struct {
			Scheme        string  `json:"scheme"`
			Workload      string  `json:"workload"`
			Src           int     `json:"src"`
			Dst           int     `json:"dst"`
			Path          []int   `json:"path"`
			Length        float64 `json:"length"`
			Dist          float64 `json:"dist"`
			Stretch       float64 `json:"stretch"`
			MaxHeaderBits int     `json:"max_header_bits"`
		}{s.Name(), inst.Name, *src, target, res.Path, res.Length, d, stretch, res.MaxHeaderBits})
	}
	fmt.Printf("%s on %s: %d -> %d\n", s.Name(), inst.Name, *src, target)
	fmt.Printf("  path    %v\n", res.Path)
	fmt.Printf("  length  %.4g (shortest %.4g, stretch %.4f)\n", res.Length, d, stretch)
	fmt.Printf("  header  %d bits (max en route)\n", res.MaxHeaderBits)
	return nil
}
