// Command routesim builds a compact routing scheme on a synthetic
// doubling workload and either routes one packet (printing its path) or
// evaluates all pairs:
//
//	routesim -workload gridgraph -side 8 -scheme thm21 -src 0 -dst 63
//	routesim -workload exppath -n 24 -scheme thmb1 -eval
//
// Schemes: thm21, thm41, thmb1, global (Talwar-style ids), full.
// Workloads: gridgraph, exppath, geometric.
package main

import (
	"flag"
	"fmt"
	"os"

	"rings/internal/routing"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "routesim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		wl     = flag.String("workload", "gridgraph", "gridgraph | exppath | geometric")
		side   = flag.Int("side", 7, "grid side (gridgraph)")
		n      = flag.Int("n", 20, "node count (exppath, geometric)")
		base   = flag.Float64("base", 4, "weight base (exppath)")
		radius = flag.Float64("radius", 25, "connect radius (geometric)")
		scheme = flag.String("scheme", "thm21", "thm21 | thm41 | thmb1 | global | full")
		delta  = flag.Float64("delta", 0.5, "target stretch slack")
		seed   = flag.Int64("seed", 1, "random seed")
		src    = flag.Int("src", 0, "source node")
		dst    = flag.Int("dst", -1, "target node (-1 = n-1)")
		eval   = flag.Bool("eval", false, "evaluate all pairs instead of one route")
	)
	flag.Parse()

	var inst workload.GraphInstance
	var err error
	switch *wl {
	case "gridgraph":
		inst, err = workload.GridGraph(*side, *seed)
	case "exppath":
		inst, err = workload.ExpPath(*n, *base)
	case "geometric":
		inst, err = workload.Geometric(*n, *radius, *seed)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}

	var s routing.Scheme
	switch *scheme {
	case "thm21":
		s, err = routing.NewThm21(inst.G, *delta)
	case "thm41":
		s, err = routing.NewThm41(inst.G, *delta)
	case "thmb1":
		s, err = routing.NewThmB1(inst.G, *delta, 0)
	case "global":
		s, err = routing.NewThm21Global(inst.G, *delta)
	case "full":
		s, err = routing.NewFullTable(inst.G)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		return err
	}

	if *eval {
		st, err := routing.Evaluate(s, inst.Idx, 1, 80*inst.G.N())
		if err != nil {
			return err
		}
		fmt.Printf("%s on %s (n=%d)\n", s.Name(), inst.Name, inst.G.N())
		fmt.Printf("  routes           %d\n", st.Routes)
		fmt.Printf("  stretch max/mean %.4f / %.4f\n", st.MaxStretch, st.MeanStretch)
		fmt.Printf("  hops max         %d\n", st.MaxHops)
		fmt.Printf("  table bits max   %d\n", st.MaxTableBits)
		fmt.Printf("  label bits max   %d\n", st.MaxLabelBits)
		fmt.Printf("  header bits max  %d\n", st.MaxHeaderBits)
		return nil
	}

	target := *dst
	if target < 0 {
		target = inst.G.N() - 1
	}
	res, err := routing.Route(s, *src, target, 80*inst.G.N())
	if err != nil {
		return err
	}
	d := inst.Idx.Dist(*src, target)
	fmt.Printf("%s on %s: %d -> %d\n", s.Name(), inst.Name, *src, target)
	fmt.Printf("  path    %v\n", res.Path)
	fmt.Printf("  length  %.4g (shortest %.4g, stretch %.4f)\n", res.Length, d, res.Length/d)
	fmt.Printf("  header  %d bits (max en route)\n", res.MaxHeaderBits)
	return nil
}
