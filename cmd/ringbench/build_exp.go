package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"rings/internal/oracle"
	"rings/internal/stats"
	"rings/internal/version"
)

// buildBenchFile is the BENCH_build.json schema: one row per instance
// size, each row the oracle's per-phase build breakdown. CI uploads the
// file as an artifact and gates merges on the n=1024 label-build row
// (see -baseline).
type buildBenchFile struct {
	Schema string `json:"schema"`
	// BuildVersion identifies the binary that produced the rows, so
	// archived artifacts correlate numbers with code.
	BuildVersion string              `json:"build_version"`
	Seed         int64               `json:"seed"`
	Rows         []oracle.BuildStats `json:"rows"`
}

const buildBenchSchema = "rings/bench-build/v1"

// expBuild measures the construction pipeline end to end — index, nets,
// packings, rings, Z/T-sets, label fill, overlay, router — at a sweep
// of sizes on the latency workload (labels scheme, tuned profile: the
// serving configuration DESIGN.md §7 targets). With -json the rows are
// written to -benchout; with -baseline the run fails if the label build
// at the gate size regressed more than 25%.
func expBuild(seed int64, quick bool) error {
	section("B2 / build pipeline — per-phase breakdown")
	sizes := []int{128, 256, 512, 1024}
	if quick {
		sizes = []int{128, 256}
	}
	if buildSizes != "" {
		sizes = sizes[:0]
		for _, tok := range strings.Split(buildSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 4 {
				return fmt.Errorf("bad -sizes entry %q", tok)
			}
			sizes = append(sizes, n)
		}
	}

	tbl := stats.NewTable("n", "index", "nets", "packings", "rings", "Z-sets", "T-sets",
		"hosts", "label fill", "labels total", "overlay", "router", "total")
	var rows []oracle.BuildStats
	for _, n := range sizes {
		snap, err := oracle.BuildSnapshot(oracle.Config{
			Workload: "latency",
			N:        n,
			Seed:     seed,
			Scheme:   oracle.SchemeLabels,
			Profile:  oracle.ProfileTuned,
			Backend:  benchBackend,
			Workers:  benchWorkers,
		})
		if err != nil {
			return fmt.Errorf("build n=%d: %w", n, err)
		}
		b := snap.Build
		rows = append(rows, b)
		tbl.AddRow(n, secs(b.IndexSec), secs(b.NetsSec), secs(b.PackingsSec), secs(b.RingsSec),
			secs(b.ZSetsSec), secs(b.TSetsSec), secs(b.HostEnumsSec), secs(b.LabelFillSec),
			secs(b.LabelsTotalSec), secs(b.OverlaySec), secs(b.RouterSec), secs(b.TotalSec))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nPhases overlap: labels, overlay and router build concurrently, so 'total'")
	fmt.Println("can undercut the phase sum on multi-core runs (GOMAXPROCS here:", maxprocs(), "workers).")

	if jsonOut {
		if err := writeBuildBench(benchOut, buildBenchFile{Schema: buildBenchSchema, BuildVersion: version.String(), Seed: seed, Rows: rows}); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", benchOut, len(rows))
	}
	if baselinePath != "" {
		if err := checkBuildBaseline(baselinePath, rows); err != nil {
			return err
		}
	}
	return nil
}

// gateSize is the instance the CI regression gate pins: large enough
// that the label build dominates, small enough for every CI runner.
const gateSize = 1024

// checkBuildBaseline compares this run's label-build seconds at the gate
// size (or the largest size both runs measured) against the checked-in
// baseline and fails beyond 25% regression.
func checkBuildBaseline(path string, rows []oracle.BuildStats) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base buildBenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	// Gate on the gateSize row when both runs have it, else the largest
	// size both measured (so reduced -sizes sweeps still gate on their
	// common prefix).
	byN := func(rows []oracle.BuildStats) map[int]oracle.BuildStats {
		m := make(map[int]oracle.BuildStats, len(rows))
		for _, r := range rows {
			m[r.N] = r
		}
		return m
	}
	baseByN, runByN := byN(base.Rows), byN(rows)
	gateN, found := -1, false
	for n := range runByN {
		if _, ok := baseByN[n]; !ok {
			continue
		}
		if n == gateSize {
			gateN, found = n, true
			break
		}
		if n > gateN {
			gateN, found = n, true
		}
	}
	if !found {
		return fmt.Errorf("baseline: no common gate size between %s and this run", path)
	}
	bRow, nRow := baseByN[gateN], runByN[gateN]
	// Wall-clock only compares cleanly on matching parallelism (and,
	// implicitly, machine class). On a worker mismatch the gate widens
	// to catastrophic-only (4×): it still catches a blown-up build
	// without turning cross-machine wall-clock noise into CI flakes.
	factor := 1.25
	if nRow.Workers != bRow.Workers {
		factor = 4
		fmt.Printf("\nbaseline gate: worker mismatch (run %d vs baseline %d): widening to catastrophic-only (%.0f×)\n",
			nRow.Workers, bRow.Workers, factor)
	}
	limit := bRow.LabelsTotalSec * factor
	ratio := 0.0
	if bRow.LabelsTotalSec > 0 {
		ratio = nRow.LabelsTotalSec / bRow.LabelsTotalSec
	}
	fmt.Printf("\nbaseline gate: n=%d label build %.3fs vs baseline %.3fs (ratio %.2fx, limit %.3fs)\n",
		nRow.N, nRow.LabelsTotalSec, bRow.LabelsTotalSec, ratio, limit)
	if nRow.LabelsTotalSec > limit {
		// Name the phase that actually blew up, so a CI regression is
		// diagnosable from the log without re-running locally.
		worst := worstPhases(bRow, nRow, 3)
		return fmt.Errorf("label build at n=%d regressed: %.3fs is %.2fx the %.3fs baseline (limit %.2fx); worst phases: %s",
			nRow.N, nRow.LabelsTotalSec, ratio, bRow.LabelsTotalSec, factor, worst)
	}
	return nil
}

// phaseRatio is one build phase's baseline comparison.
type phaseRatio struct {
	name           string
	base, run, rel float64
}

// worstPhases ranks the per-phase regressions (measured/baseline, phases
// above 1ms baseline only — ratios of microsecond phases are noise) and
// formats the top k for the gate's failure message.
func worstPhases(base, run oracle.BuildStats, k int) string {
	phases := []phaseRatio{
		{name: "index", base: base.IndexSec, run: run.IndexSec},
		{name: "nets", base: base.NetsSec, run: run.NetsSec},
		{name: "radii", base: base.RadiiSec, run: run.RadiiSec},
		{name: "packings", base: base.PackingsSec, run: run.PackingsSec},
		{name: "rings", base: base.RingsSec, run: run.RingsSec},
		{name: "triangulation", base: base.TriangulationSec, run: run.TriangulationSec},
		{name: "zsets", base: base.ZSetsSec, run: run.ZSetsSec},
		{name: "tsets", base: base.TSetsSec, run: run.TSetsSec},
		{name: "host_enums", base: base.HostEnumsSec, run: run.HostEnumsSec},
		{name: "label_fill", base: base.LabelFillSec, run: run.LabelFillSec},
		{name: "overlay", base: base.OverlaySec, run: run.OverlaySec},
		{name: "router", base: base.RouterSec, run: run.RouterSec},
	}
	ranked := phases[:0]
	for _, p := range phases {
		if p.base < 1e-3 {
			continue
		}
		p.rel = p.run / p.base
		ranked = append(ranked, p)
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].rel > ranked[j].rel })
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	parts := make([]string, len(ranked))
	for i, p := range ranked {
		parts[i] = fmt.Sprintf("%s %.2fx (%.3fs vs %.3fs)", p.name, p.rel, p.run, p.base)
	}
	if len(parts) == 0 {
		return "(no phase above the 1ms noise floor)"
	}
	return strings.Join(parts, ", ")
}

func writeBuildBench(path string, file buildBenchFile) error {
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func secs(s float64) string { return fmt.Sprintf("%.3fs", s) }

func maxprocs() int { return runtime.GOMAXPROCS(0) }
