package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/stats"
	"rings/internal/version"
)

// serveBenchFile is the BENCH_serve.json schema: one row per instance
// size measuring the warm serving path — single-engine and K=4 fleet
// throughput with per-query percentiles, the flat batch path's
// allocations per query, and the warm-start wall time of the v2
// mmap open against the retired v1 decode. CI uploads the file as an
// artifact and gates merges on the largest size both runs measured
// (see -baseline).
type serveBenchFile struct {
	Schema       string          `json:"schema"`
	BuildVersion string          `json:"build_version"`
	Seed         int64           `json:"seed"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	Rows         []serveBenchRow `json:"rows"`
}

const serveBenchSchema = "rings/bench-serve/v1"

// serveBenchRow is one measured instance size.
type serveBenchRow struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`

	// Warm single-engine serving: closed-loop GOMAXPROCS workers over
	// the zero-alloc batch path (qps counts pairs answered), per-query
	// latency sampled as one-pair batches, and the measured heap
	// allocations per query on the warm path.
	SingleQPS   float64 `json:"single_qps"`
	SingleP50Us float64 `json:"single_p50_us"`
	SingleP99Us float64 `json:"single_p99_us"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// The same pool (plus an equal cross-shard half) against a K-shard
	// fleet over the same global instance.
	FleetShards int     `json:"fleet_shards"`
	FleetQPS    float64 `json:"fleet_qps"`
	FleetP50Us  float64 `json:"fleet_p50_us"`
	FleetP99Us  float64 `json:"fleet_p99_us"`

	// Warm-start wall time from a persisted file: the retired v1
	// per-label decode, the v2 full restore (labels materialized,
	// derived artifacts rebuilt), and the v2 serve-immediately open
	// (mmap + checksum validation). WarmSpeedupX = v1 decode / v2 open.
	WarmV1DecodeSec  float64 `json:"warm_v1_decode_sec"`
	WarmV2RestoreSec float64 `json:"warm_v2_restore_sec"`
	WarmV2OpenSec    float64 `json:"warm_v2_open_sec"`
	WarmSpeedupX     float64 `json:"warm_speedup_x"`
	// Mapped reports whether the v2 open actually mmapped (false on
	// platforms without mmap, where the open falls back to one bulk
	// read — the speedup column then measures that path).
	Mapped bool `json:"mapped"`
}

// expServe measures the serving frontier on the latency workload
// (labels scheme, tuned profile — the configuration BENCH_shard.json
// showed is query-bound): warm flat-path throughput and latency on a
// single engine and a 4-shard fleet, allocations per warm query, and
// the warm-start speedup of the v2 arena format over the v1 decode.
// With -json the rows go to -serveout; with -baseline the run fails if
// throughput at the gate size regressed more than 25%.
func expServe(seed int64, quick bool) error {
	section("SV1 / serve: flat arenas, zero-alloc batches, mmap warm starts")
	const k = 4
	sizes := []int{512, 4096}
	pairSample := 4000
	measure := 400 * time.Millisecond
	if quick {
		sizes = []int{512}
		pairSample = 1500
		measure = 150 * time.Millisecond
	}

	tbl := stats.NewTable("n", "single qps", "p50", "p99", "allocs/op",
		"fleet qps", "fleet p50", "v1 decode", "v2 restore", "v2 open", "speedup")
	var rows []serveBenchRow
	for _, n := range sizes {
		cfg := oracle.Config{
			Workload:    "latency",
			N:           n,
			Seed:        seed,
			Scheme:      oracle.SchemeLabels,
			Profile:     oracle.ProfileTuned,
			Backend:     benchBackend,
			Workers:     benchWorkers,
			SkipRouting: true,
			SkipOverlay: true,
		}
		snap, err := oracle.BuildSnapshot(cfg)
		if err != nil {
			return fmt.Errorf("build n=%d: %w", n, err)
		}
		engine := oracle.NewEngine(snap, oracle.EngineOptions{})

		rng := rand.New(rand.NewSource(seed + 67))
		pool := make([]oracle.Pair, pairSample)
		for i := range pool {
			pool[i] = oracle.Pair{U: rng.Intn(n), V: rng.Intn(n)}
		}

		row := serveBenchRow{Workload: snap.Name, N: n, FleetShards: k}

		// Allocations per warm query: the batch loop reuses one result
		// buffer, so after warm-up every malloc below is the serving
		// path's own. The flat-path unit test asserts exactly zero; this
		// records the measured number alongside the throughput it buys.
		const allocBatch = 256
		batch := pool[:allocBatch]
		out := make([]oracle.EstimateResult, allocBatch)
		if _, err := engine.EstimateBatchInto(batch, out); err != nil {
			return err
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		const allocIters = 200
		for i := 0; i < allocIters; i++ {
			if _, err := engine.EstimateBatchInto(batch, out); err != nil {
				return err
			}
		}
		runtime.ReadMemStats(&m1)
		row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(allocIters*allocBatch)

		// Per-query latency: one-pair batches so each sample is a full
		// serve-path round trip (state load, arena pin, flat walk).
		one := make([]oracle.Pair, 1)
		oneOut := make([]oracle.EstimateResult, 1)
		lats := make([]float64, len(pool))
		for i, p := range pool {
			one[0] = p
			t0 := time.Now()
			if _, err := engine.EstimateBatchInto(one, oneOut); err != nil {
				return err
			}
			lats[i] = float64(time.Since(t0)) / float64(time.Microsecond)
		}
		sum := stats.Summarize(lats)
		row.SingleP50Us, row.SingleP99Us = sum.P50, sum.P99

		row.SingleQPS = batchThroughput(measure, pool, func(pairs []oracle.Pair, buf []oracle.EstimateResult) {
			if _, err := engine.EstimateBatchInto(pairs, buf); err != nil {
				panic(err)
			}
		})

		// The fleet over the same global instance, driven by a 50/50
		// intra/cross mix (cross answers come from the beacon tier).
		fleet, err := shard.NewFleet(shard.Config{Oracle: cfg, Shards: k})
		if err != nil {
			return fmt.Errorf("fleet n=%d: %w", n, err)
		}
		mixed := make([]oracle.Pair, 0, 2*len(pool))
		for _, p := range pool {
			v := p.V - p.V%k + p.U%k // snap V onto U's shard
			if v >= n {
				v = p.U
			}
			mixed = append(mixed, oracle.Pair{U: p.U, V: v})
			w := p.V
			for w%k == p.U%k {
				w = (w + 1) % n
			}
			mixed = append(mixed, oracle.Pair{U: p.U, V: w})
		}
		flats := make([]float64, len(mixed))
		for i, p := range mixed {
			t0 := time.Now()
			if _, err := fleet.Estimate(p.U, p.V); err != nil {
				return err
			}
			flats[i] = float64(time.Since(t0)) / float64(time.Microsecond)
		}
		fsum := stats.Summarize(flats)
		row.FleetP50Us, row.FleetP99Us = fsum.P50, fsum.P99
		row.FleetQPS = throughput(measure, mixed, func(p oracle.Pair) {
			if _, err := fleet.Estimate(p.U, p.V); err != nil {
				panic(err)
			}
		})

		if err := measureWarmStart(snap, &row); err != nil {
			return err
		}

		rows = append(rows, row)
		tbl.AddRow(n,
			fmt.Sprintf("%.2fM", row.SingleQPS/1e6),
			fmt.Sprintf("%.1fus", row.SingleP50Us), fmt.Sprintf("%.1fus", row.SingleP99Us),
			fmt.Sprintf("%.3f", row.AllocsPerOp),
			fmt.Sprintf("%.2fM", row.FleetQPS/1e6), fmt.Sprintf("%.1fus", row.FleetP50Us),
			fmt.Sprintf("%.3fs", row.WarmV1DecodeSec), fmt.Sprintf("%.3fs", row.WarmV2RestoreSec),
			fmt.Sprintf("%.4fs", row.WarmV2OpenSec), fmt.Sprintf("%.0fx", row.WarmSpeedupX))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nqps counts pairs answered by the flat batch path (closed loop, GOMAXPROCS")
	fmt.Println("workers); allocs/op is measured on the warm path (the unit test asserts it is")
	fmt.Println("exactly zero). Single-engine numbers bypass the result cache to measure the")
	fmt.Println("raw flat walk; fleet numbers go through fleet.Estimate and so ride the")
	fmt.Println("per-shard cache, the production serving configuration — the two columns are")
	fmt.Println("different paths, not a sharding speedup. 'v2 open' is OpenSnapshotFile —")
	fmt.Println("mmap + checksum validation, estimates served straight from the file;")
	fmt.Println("'v2 restore' additionally materializes labels and rebuilds derived artifacts")
	fmt.Println("in the background hydration path.")

	if jsonOut {
		file := serveBenchFile{
			Schema:       serveBenchSchema,
			BuildVersion: version.String(),
			Seed:         seed,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Rows:         rows,
		}
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(serveOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", serveOut, len(rows))
	}
	if baselinePath != "" {
		if err := checkServeBaseline(baselinePath, rows); err != nil {
			return err
		}
	}
	return nil
}

// measureWarmStart persists the snapshot in both formats and times the
// three boot paths against the same bytes on disk.
func measureWarmStart(snap *oracle.Snapshot, row *serveBenchRow) error {
	dir, err := os.MkdirTemp("", "ringbench-serve")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	v1Path := filepath.Join(dir, "snap.v1")
	v2Path := filepath.Join(dir, "snap.v2")
	writeTo := func(path string, write func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeTo(v1Path, func(f *os.File) error { _, err := snap.WriteLegacyV1(f); return err }); err != nil {
		return err
	}
	if err := writeTo(v2Path, func(f *os.File) error { _, err := snap.WriteTo(f); return err }); err != nil {
		return err
	}

	readFull := func(path string) (float64, error) {
		f, err := os.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		t0 := time.Now()
		restored, err := oracle.ReadSnapshot(f)
		if err != nil {
			return 0, err
		}
		sec := time.Since(t0).Seconds()
		restored.Close()
		return sec, nil
	}
	if row.WarmV1DecodeSec, err = readFull(v1Path); err != nil {
		return fmt.Errorf("v1 decode: %w", err)
	}
	if row.WarmV2RestoreSec, err = readFull(v2Path); err != nil {
		return fmt.Errorf("v2 restore: %w", err)
	}
	t0 := time.Now()
	opened, err := oracle.OpenSnapshotFile(v2Path)
	if err != nil {
		return fmt.Errorf("v2 open: %w", err)
	}
	row.WarmV2OpenSec = time.Since(t0).Seconds()
	row.Mapped = opened.Flat != nil && opened.Flat.Mapped()
	// One estimate proves the opened file actually serves before we
	// credit it with the speedup.
	if _, err := opened.Estimate(0, 1%snap.N()); err != nil {
		opened.Close()
		return fmt.Errorf("v2 open serve check: %w", err)
	}
	opened.Close()
	if row.WarmV2OpenSec > 0 {
		row.WarmSpeedupX = row.WarmV1DecodeSec / row.WarmV2OpenSec
	}
	return nil
}

// batchThroughput runs GOMAXPROCS closed-loop workers, each answering
// full batches from the pool into its own reused result buffer, and
// reports pairs answered per second.
func batchThroughput(d time.Duration, pool []oracle.Pair, run func(pairs []oracle.Pair, out []oracle.EstimateResult)) float64 {
	const batchSize = 256
	workers := runtime.GOMAXPROCS(0)
	var done atomic.Int64
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]oracle.EstimateResult, batchSize)
			off := (w * 131) % len(pool)
			count := 0
			for time.Now().Before(deadline) {
				lo := off % (len(pool) - batchSize + 1)
				run(pool[lo:lo+batchSize], out)
				off += batchSize
				count += batchSize
			}
			done.Add(int64(count))
		}(w)
	}
	wg.Wait()
	return float64(done.Load()) / time.Since(start).Seconds()
}

// checkServeBaseline compares this run's single-engine and fleet
// throughput at the largest size both runs measured against the
// checked-in baseline and fails beyond 25% regression. Wall-clock only
// compares cleanly on matching parallelism, so a GOMAXPROCS mismatch
// (baseline machine vs CI runner) widens the gate to catastrophic-only
// (4×) — same policy as the build gate's worker mismatch.
func checkServeBaseline(path string, rows []serveBenchRow) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base serveBenchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseByN := make(map[int]serveBenchRow, len(base.Rows))
	for _, r := range base.Rows {
		baseByN[r.N] = r
	}
	gateN := -1
	for _, r := range rows {
		if _, ok := baseByN[r.N]; ok && r.N > gateN {
			gateN = r.N
		}
	}
	if gateN < 0 {
		return fmt.Errorf("baseline: no common gate size between %s and this run", path)
	}
	var run serveBenchRow
	for _, r := range rows {
		if r.N == gateN {
			run = r
		}
	}
	bRow := baseByN[gateN]
	factor := 1.25
	if base.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		factor = 4
		fmt.Printf("\nserve gate: GOMAXPROCS mismatch (run %d vs baseline %d): widening to catastrophic-only (%.0f×)\n",
			runtime.GOMAXPROCS(0), base.GOMAXPROCS, factor)
	}
	fail := func(name string, baseQPS, runQPS float64) error {
		ratio := 0.0
		if runQPS > 0 {
			ratio = baseQPS / runQPS
		}
		fmt.Printf("serve gate: n=%d %s %.2fM q/s vs baseline %.2fM (baseline/run %.2fx, limit %.2fx)\n",
			gateN, name, runQPS/1e6, baseQPS/1e6, ratio, factor)
		if runQPS*factor < baseQPS {
			return fmt.Errorf("%s throughput at n=%d regressed: %.2fM q/s vs the %.2fM baseline (limit %.2fx)",
				name, gateN, runQPS/1e6, baseQPS/1e6, factor)
		}
		return nil
	}
	fmt.Println()
	if err := fail("single-engine", bRow.SingleQPS, run.SingleQPS); err != nil {
		return err
	}
	return fail("fleet", bRow.FleetQPS, run.FleetQPS)
}
