// Command ringbench regenerates every table and figure of the paper's
// evaluation on synthetic doubling workloads, printing the measurements
// as markdown tables. EXPERIMENTS.md is produced from its output:
//
//	ringbench -exp all -seed 1
//
// Individual experiments: table1 table2 table3 tri dls sw-a sw-b
// sw-single sw-ul substrates figure1 figure2 (comma-separated).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rings/internal/metric"
	"rings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringbench:", err)
		os.Exit(1)
	}
}

// Flags consumed by the build experiment (package-level plain values so
// the experiment table's uniform func(seed, quick) signature stays
// intact and tests can call expBuild without flag parsing).
var (
	jsonOut      bool
	benchOut     = "BENCH_build.json"
	churnOut     = "BENCH_churn.json"
	shardOut     = "BENCH_shard.json"
	serveOut     = "BENCH_serve.json"
	faultOut     = "BENCH_fault.json"
	objectsOut   = "BENCH_objects.json"
	baselinePath string
	buildSizes   string
	// benchBackend/benchWorkers mirror -backend/-workers into the build
	// experiment's snapshot configs ("" means the oracle default, eager).
	benchBackend string
	benchWorkers int
)

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiments to run (comma-separated, or 'all')")
		seed    = flag.Int64("seed", 1, "base random seed")
		quick   = flag.Bool("quick", false, "smaller instances (CI mode)")
		backend = flag.String("backend", "eager", "ball-index backend: eager (parallel full sort) or lazy (memory-bounded)")
		workers = flag.Int("workers", 0, "index build/scan parallelism (0 = GOMAXPROCS)")
	)
	flag.BoolVar(&jsonOut, "json", false, "write machine-readable output (build experiment: BENCH_build.json)")
	flag.StringVar(&benchOut, "benchout", benchOut, "output path for -json build rows")
	flag.StringVar(&churnOut, "churnout", churnOut, "output path for -json churn rows")
	flag.StringVar(&shardOut, "shardout", shardOut, "output path for -json shard rows")
	flag.StringVar(&serveOut, "serveout", serveOut, "output path for -json serve rows")
	flag.StringVar(&faultOut, "faultout", faultOut, "output path for -json fault rows")
	flag.StringVar(&objectsOut, "objectsout", objectsOut, "output path for -json objects rows")
	flag.StringVar(&baselinePath, "baseline", "", "bench baseline (build: BENCH_build.json, serve: BENCH_serve.json); fail if the gate-size measurement regressed >25%")
	flag.StringVar(&buildSizes, "sizes", "", "comma-separated n values for -exp build (default 128,256,512,1024; quick: 128,256)")
	flag.Parse()

	opts := metric.Options{Workers: *workers}
	switch *backend {
	case "eager":
		opts.Backend = metric.Eager
	case "lazy":
		opts.Backend = metric.Lazy
	default:
		return fmt.Errorf("unknown -backend %q (want eager or lazy)", *backend)
	}
	workload.SetIndexOptions(opts)
	benchBackend, benchWorkers = *backend, *workers

	all := map[string]func(int64, bool) error{
		"build":      expBuild,
		"churn":      expChurn,
		"shard":      expShard,
		"serve":      expServe,
		"fault":      expFault,
		"objects":    expObjects,
		"table1":     expTable1,
		"table2":     expTable2,
		"table3":     expTable3,
		"tri":        expTriangulation,
		"dls":        expDistanceLabels,
		"sw-a":       expSmallWorldA,
		"sw-b":       expSmallWorldB,
		"sw-single":  expSingleLink,
		"sw-ul":      expULComparison,
		"substrates": expSubstrates,
		"figure1":    expFigure1,
		"figure2":    expFigure2,
	}
	order := []string{
		"substrates", "table1", "table2", "table3", "tri", "dls",
		"sw-a", "sw-b", "sw-single", "sw-ul", "figure1", "figure2",
	}

	var names []string
	if *exp == "all" {
		names = order
	} else {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		f, ok := all[name]
		if !ok {
			valid := make([]string, 0, len(all))
			for k := range all {
				valid = append(valid, k)
			}
			sort.Strings(valid)
			return fmt.Errorf("unknown experiment %q (valid: %s, or 'all')", name, strings.Join(valid, " "))
		}
		if err := f(*seed, *quick); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	return nil
}

func section(title string) {
	fmt.Printf("\n### %s\n\n", title)
}
