package main

import (
	"fmt"
	"math"

	"rings/internal/metric"
	"rings/internal/smallworld"
	"rings/internal/stats"
	"rings/internal/workload"
)

func swBudget(n int) int { return 10*int(math.Ceil(math.Log2(float64(n)))) + 10 }

// expSmallWorldA reproduces E6 (Theorem 5.2(a)): greedy queries finish in
// O(log n) hops even when ∆ is exponential in n.
func expSmallWorldA(seed int64, quick bool) error {
	section("E6 / Theorem 5.2(a) — greedy small worlds, O(log n) hops")
	side, lineN := 8, 64
	if quick {
		side, lineN = 6, 32
	}
	grid, err := workload.Grid(side)
	if err != nil {
		return err
	}
	line, err := workload.ExpLine(lineN, float64(lineN)-1) // ∆ ~ 2^n
	if err != nil {
		return err
	}
	cube, err := workload.Cube(side*side, seed)
	if err != nil {
		return err
	}
	tbl := stats.NewTable("workload", "n", "log2 ∆", "out-degree", "pointer budget",
		"hops(max)", "hops(mean)", "log2 n")
	for _, inst := range []workload.MetricInstance{grid, cube, line} {
		m, err := smallworld.NewThm52a(inst.Idx, smallworld.DefaultParams(seed))
		if err != nil {
			return err
		}
		st, err := smallworld.EvaluateAll(m, inst.Idx.N(), 1, swBudget(inst.Idx.N()))
		if err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
		tbl.AddRow(inst.Name, inst.Idx.N(), math.Round(metric.LogAspect(inst.Idx)),
			m.OutDegree(), m.PointerBudget(), st.MaxHops, st.MeanHops,
			math.Ceil(math.Log2(float64(inst.Idx.N()))))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nMax hops stay within a small multiple of log2 n on the exponential line")
	fmt.Println("(log2 ∆ ≈ n) exactly as Theorem 5.2(a) promises.")
	return nil
}

// expSmallWorldB reproduces E7 (Theorem 5.2(b)): with n fixed and log ∆
// swept, the 5.2(b) link budget grows like sqrt(log ∆)·log log ∆ while
// 5.2(a)'s grows linearly — the barrier the theorem breaks — with hops
// still O(log n) and the non-greedy rule (**) in live use.
func expSmallWorldB(seed int64, quick bool) error {
	section("E7 / Theorem 5.2(b) — breaking the log ∆ out-degree barrier")
	n := 32
	aspects := []float64{30, 120, 480}
	if quick {
		aspects = []float64{30, 120}
	}
	tbl := stats.NewTable("log2 ∆", "5.2a budget", "5.2b budget", "5.2b/5.2a",
		"5.2b hops(max)", "5.2b sideways steps")
	var prevA, prevB int
	for _, la := range aspects {
		inst, err := workload.ExpLine(n, la)
		if err != nil {
			return err
		}
		a, err := smallworld.NewThm52a(inst.Idx, smallworld.DefaultParams(seed))
		if err != nil {
			return err
		}
		b, err := smallworld.NewThm52b(inst.Idx, smallworld.DefaultParams(seed))
		if err != nil {
			return err
		}
		st, err := smallworld.EvaluateAll(b, n, 1, swBudget(n))
		if err != nil {
			return fmt.Errorf("log∆=%v: %w", la, err)
		}
		tbl.AddRow(la, a.PointerBudget(), b.PointerBudget(),
			float64(b.PointerBudget())/float64(a.PointerBudget()), st.MaxHops, st.Sideways)
		prevA, prevB = a.PointerBudget(), b.PointerBudget()
	}
	_ = prevA
	_ = prevB
	fmt.Print(tbl.String())
	fmt.Println("\nThe 5.2b/5.2a budget ratio falls as log ∆ grows: 5.2a scales ~linearly in")
	fmt.Println("log ∆, 5.2b ~ sqrt(log ∆)·loglog ∆. Sideways steps are rule (**) firing —")
	fmt.Println("the paper's first non-greedy strongly local router.")
	return nil
}

// expSingleLink reproduces E8 (Theorem 5.5): one long-range contact per
// node over a graph of local contacts; greedy completes in
// 2^O(α)·log²∆ hops (Kleinberg's grid result is the side-k case).
func expSingleLink(seed int64, quick bool) error {
	section("E8 / Theorem 5.5 — one long-range contact per node")
	side, pathN := 10, 20
	if quick {
		side, pathN = 7, 14
	}
	gg, err := workload.GridGraph(side, seed)
	if err != nil {
		return err
	}
	ep, err := workload.ExpPath(pathN, 4)
	if err != nil {
		return err
	}
	tbl := stats.NewTable("workload", "n", "log2 ∆", "hops(max)", "hops(mean)",
		"2^α·log²∆ bound", "mean graph distance (hops floor w/o shortcut)")
	for _, inst := range []workload.GraphInstance{gg, ep} {
		m, err := smallworld.NewThm55(inst.G, inst.Idx, seed)
		if err != nil {
			return err
		}
		budget := int(m.ExpectedHopBound()) + inst.Idx.N()
		st, err := smallworld.EvaluateAll(m, inst.Idx.N(), 1, budget)
		if err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
		// Mean hop-distance of the underlying graph (what greedy walks
		// without long links, since all weights are ~uniform on the grid).
		sum, cnt := 0.0, 0
		n := inst.Idx.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					sum += float64(inst.APSP.HopCount(u, v))
					cnt++
				}
			}
		}
		tbl.AddRow(inst.Name, n, math.Round(metric.LogAspect(inst.Idx)), st.MaxHops,
			st.MeanHops, math.Round(m.ExpectedHopBound()), sum/float64(cnt))
	}
	fmt.Print(tbl.String())
	return nil
}

// expULComparison reproduces E9 (Theorem 5.4): on a UL-constrained metric
// (the unit grid), our models coincide with Kleinberg's STRUCTURES:
// contact probability tracks Θ(log n)/x_uv and 5.2(b)'s Z-contacts are
// never used (no sideways steps).
func expULComparison(seed int64, quick bool) error {
	section("E9 / Theorem 5.4 — agreement with Kleinberg's STRUCTURES on UL metrics")
	side := 6
	trials := 30
	if quick {
		side, trials = 5, 12
	}
	inst, err := workload.Grid(side)
	if err != nil {
		return err
	}
	idx := inst.Idx
	n := idx.N()

	// (b,c): 5.2b on a UL metric routes greedily — zero sideways steps.
	b, err := smallworld.NewThm52b(idx, smallworld.DefaultParams(seed))
	if err != nil {
		return err
	}
	st, err := smallworld.EvaluateAll(b, n, 1, swBudget(n))
	if err != nil {
		return err
	}
	fmt.Printf("5.2b on %s: %d queries, %d sideways steps (Theorem 5.4: Z-contacts unused)\n\n",
		inst.Name, st.Queries, st.Sideways)

	// (d): empirical P[v ∈ contacts(u)] vs (log n)/x_uv for both models.
	pairs := [][2]int{{0, 1}, {0, side + 1}, {0, n / 2}, {0, n - 1}, {n / 2, n/2 + 2}}
	tbl := stats.NewTable("pair", "x_uv", "(log2 n)/x_uv (capped)", "P[contact] structures", "P[contact] 5.2a")
	logn := math.Ceil(math.Log2(float64(n)))
	for _, p := range pairs {
		u, v := p[0], p[1]
		x := smallworld.MinBallExact(idx, u, v)
		pred := math.Min(1, logn/float64(x))
		fS, err := smallworld.ContactFrequency(func(s int64) (smallworld.Model, error) {
			return smallworld.NewStructures(idx, 1, false, s)
		}, u, v, trials)
		if err != nil {
			return err
		}
		fA, err := smallworld.ContactFrequency(func(s int64) (smallworld.Model, error) {
			return smallworld.NewThm52a(idx, smallworld.DefaultParams(s))
		}, u, v, trials)
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("(%d,%d)", u, v), x, pred, fS, fA)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nBoth models' contact probabilities decay with x_uv at the Θ(log n)/x_uv")
	fmt.Println("rate (up to the Θ constants), matching Theorem 5.4(d).")
	return nil
}
