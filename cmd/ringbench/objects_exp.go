package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"rings/internal/churn"
	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/stats"
	"rings/internal/version"
)

// objectsBenchFile is the BENCH_objects.json schema: one row per
// workload family measuring the object-location layer on a churned
// K-shard fleet — lookup latency and realized stretch against the
// brute-force nearest replica, publish/republish throughput, and the
// churn-phase exactness check (every verification failure is counted
// and the experiment asserts the count is zero).
type objectsBenchFile struct {
	Schema       string            `json:"schema"`
	BuildVersion string            `json:"build_version"`
	Seed         int64             `json:"seed"`
	GOMAXPROCS   int               `json:"gomaxprocs"`
	Rows         []objectsBenchRow `json:"rows"`
}

const objectsBenchSchema = "rings/bench-objects/v1"

// objectsBenchRow is one measured family.
type objectsBenchRow struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Universe int    `json:"universe"`
	Shards   int    `json:"shards"`
	Objects  int    `json:"objects"`
	Replicas int    `json:"replicas"`

	// Publish throughput over the seeding phase (accepted publishes per
	// second, overlay rebuild included).
	PublishPerSec float64 `json:"publish_per_sec"`

	// Warm lookup latency and cost. RemoteFrac is the fraction of
	// lookups answered by a replica outside the origin's shard (the
	// beacon-sandwich screening path).
	LookupP50Us float64 `json:"lookup_p50_us"`
	LookupP95Us float64 `json:"lookup_p95_us"`
	HopsMean    float64 `json:"hops_mean"`
	RemoteFrac  float64 `json:"remote_frac"`

	// Realized lookup stretch against the brute-force nearest replica,
	// verified per query (a disagreement fails the experiment, so the
	// mean is a checked 1.0 — the directory's exactness contract).
	LookupStretchMean float64 `json:"lookup_stretch_mean"`
	LookupStretchMax  float64 `json:"lookup_stretch_max"`

	// Cross-shard estimate stretch on the same instance — the fleet's
	// (1+ε) sandwich answers. The object layer's acceptance criterion:
	// LookupStretchMean <= EstimateStretchMean (exact replica answers
	// must not be worse than the approximate distance tier).
	EstimateStretchMean float64 `json:"estimate_stretch_mean"`

	// Churn phase: ops applied, replicas moved off departing nodes, and
	// the post-op verification record. ChurnLookupErrors counts lookups
	// that disagreed with the brute-force oracle after a churn commit;
	// the experiment asserts it is zero.
	ChurnOps          int     `json:"churn_ops"`
	Republishes       int64   `json:"republishes"`
	RepublishPerSec   float64 `json:"republish_per_sec"`
	ChurnLookupChecks int     `json:"churn_lookup_checks"`
	ChurnLookupErrors int     `json:"churn_lookup_errors"`
}

// expObjects measures the object-location subsystem end to end on a
// churned 4-shard fleet per workload family: publish a catalog, verify
// and time warm lookups, compare the realized lookup stretch with the
// beacon tier's cross-shard estimate stretch, then churn the fleet and
// re-verify every answer against the brute-force oracle after each
// commit.
func expObjects(seed int64, quick bool) error {
	section("OL1 / objects: nearest-replica location on a churned fleet")
	const (
		k         = 4
		minShard  = 3
		objects   = 32
		churnOps  = 48
		perOpLook = 6
	)
	lookSample := 600
	families := shardFamilies(seed, quick)
	if quick {
		lookSample = 200
		families = families[:2] // grid + cube keep the CI lane fast
	}

	tbl := stats.NewTable("workload", "n", "lookup p50", "hops", "remote", "lk stretch",
		"est stretch", "republish", "churn errs")
	var rows []objectsBenchRow
	for _, cfg := range families {
		cfg.Scheme = oracle.SchemeLabels
		cfg.Backend = benchBackend
		cfg.Workers = benchWorkers
		cfg.SkipRouting = true
		cfg.SkipOverlay = true

		f, err := shard.NewFleet(shard.Config{
			Oracle: cfg, Shards: k, Churn: true, MinShardNodes: minShard,
		})
		if err != nil {
			return fmt.Errorf("fleet %s: %w", cfg.Workload, err)
		}

		row := objectsBenchRow{
			Workload: f.Name(), N: f.N(), Universe: f.Universe(), Shards: k, Objects: objects,
		}
		active, perShard := activeGlobals(f)
		rng := rand.New(rand.NewSource(seed + 61))

		// Publish phase: the catalog, 1..3 replicas each.
		names := make([]string, objects)
		t0 := time.Now()
		published := 0
		for i := range names {
			names[i] = fmt.Sprintf("o%03d", i)
			for j := 0; j < 1+rng.Intn(3); j++ {
				g := active[rng.Intn(len(active))]
				if _, err := f.PublishObject(names[i], g); err != nil {
					return fmt.Errorf("%s: publish %s on %d: %w", row.Workload, names[i], g, err)
				}
				published++
			}
		}
		row.PublishPerSec = float64(published) / time.Since(t0).Seconds()
		row.Replicas = f.ObjectStats().Replicas

		// Warm lookup phase: every answer verified against the
		// brute-force oracle before its latency and stretch count.
		lats := make([]float64, 0, lookSample)
		var stretches []float64
		hops, remote := 0, 0
		for i := 0; i < lookSample; i++ {
			g := active[rng.Intn(len(active))]
			name := names[rng.Intn(len(names))]
			q0 := time.Now()
			res, err := f.LookupObject(name, g)
			lat := float64(time.Since(q0)) / float64(time.Microsecond)
			if err != nil {
				return fmt.Errorf("%s: lookup %s from %d: %w", row.Workload, name, g, err)
			}
			tn, td, err := f.TrueNearestObject(name, g)
			if err != nil {
				return err
			}
			if res.Node != tn || math.Float64bits(res.Dist) != math.Float64bits(td) {
				return fmt.Errorf("%s: lookup %s from %d answered (%d, %v), brute force (%d, %v)",
					row.Workload, name, g, res.Node, res.Dist, tn, td)
			}
			st := 1.0
			if td > 0 {
				st = res.Dist / td
			}
			lats = append(lats, lat)
			stretches = append(stretches, st)
			hops += res.Hops
			if res.Remote {
				remote++
			}
		}
		latSum := stats.Summarize(lats)
		stSum := stats.Summarize(stretches)
		row.LookupP50Us, row.LookupP95Us = latSum.P50, latSum.P95
		row.HopsMean = float64(hops) / float64(lookSample)
		row.RemoteFrac = float64(remote) / float64(lookSample)
		row.LookupStretchMean, row.LookupStretchMax = stSum.Mean, stSum.Max

		// Cross-shard estimate stretch on the same instance: the tier
		// the replica answers must not be worse than.
		var estStretch []float64
		for i := 0; i < lookSample; i++ {
			u := active[rng.Intn(len(active))]
			v := active[rng.Intn(len(active))]
			if u%k == v%k {
				continue
			}
			res, err := f.Estimate(u, v)
			if err != nil {
				return err
			}
			d, err := f.TrueDist(u, v)
			if err != nil {
				return err
			}
			if d > 0 {
				estStretch = append(estStretch, res.Upper/d)
			}
		}
		row.EstimateStretchMean = stats.Summarize(estStretch).Mean

		// Churn phase: joins and leaves honoring the per-shard floor;
		// after every commit a handful of lookups is re-verified against
		// the brute-force oracle over the new membership.
		baseRepub := f.ObjectStats().Republishes
		c0 := time.Now()
		for op := 0; op < churnOps; op++ {
			o, ok := nextChurnOp(rng, f.Universe(), k, minShard, active, perShard)
			if !ok {
				continue
			}
			if _, err := f.Apply([]churn.Op{o}); err != nil {
				return fmt.Errorf("%s: churn op %d (%+v): %w", row.Workload, op, o, err)
			}
			active, perShard = applyToActive(o, active, perShard, k)
			row.ChurnOps++
			for i := 0; i < perOpLook; i++ {
				g := active[rng.Intn(len(active))]
				name := names[rng.Intn(len(names))]
				res, err := f.LookupObject(name, g)
				if err != nil {
					row.ChurnLookupErrors++
					continue
				}
				tn, td, terr := f.TrueNearestObject(name, g)
				if terr != nil || res.Node != tn || math.Float64bits(res.Dist) != math.Float64bits(td) {
					row.ChurnLookupErrors++
				}
				row.ChurnLookupChecks++
			}
		}
		churnElapsed := time.Since(c0)
		row.Republishes = f.ObjectStats().Republishes - baseRepub
		row.RepublishPerSec = float64(row.Republishes) / churnElapsed.Seconds()

		if row.ChurnLookupErrors != 0 {
			return fmt.Errorf("%s: %d of %d churn-phase lookups disagreed with the brute-force oracle",
				row.Workload, row.ChurnLookupErrors, row.ChurnLookupChecks)
		}
		if row.LookupStretchMean > row.EstimateStretchMean {
			return fmt.Errorf("%s: mean lookup stretch %.4f exceeds the cross-shard estimate stretch %.4f",
				row.Workload, row.LookupStretchMean, row.EstimateStretchMean)
		}
		if st := f.ObjectStats(); st.Misses != 0 {
			return fmt.Errorf("%s: %d certified lookup misses", row.Workload, st.Misses)
		}
		f.Close()

		rows = append(rows, row)
		tbl.AddRow(row.Workload, row.N,
			fmt.Sprintf("%.1fus", row.LookupP50Us), fmt.Sprintf("%.2f", row.HopsMean),
			fmt.Sprintf("%.0f%%", row.RemoteFrac*100),
			fmt.Sprintf("%.3f", row.LookupStretchMean),
			fmt.Sprintf("%.3f", row.EstimateStretchMean),
			fmt.Sprintf("%d", row.Republishes), fmt.Sprintf("%d", row.ChurnLookupErrors))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nEvery lookup above (warm and churn-phase) was verified byte-identical to a")
	fmt.Println("brute-force scan over the live replica set, so lookup stretch is a checked")
	fmt.Println("1.0: replica answers are exact while the cross-shard estimate tier carries")
	fmt.Println("its (1+eps) sandwich factor. Republishes move replicas off departing nodes")
	fmt.Println("to the next-nearest survivor inside the same churn commit.")

	if jsonOut {
		file := objectsBenchFile{
			Schema:       objectsBenchSchema,
			BuildVersion: version.String(),
			Seed:         seed,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Rows:         rows,
		}
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(objectsOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", objectsOut, len(rows))
	}
	return nil
}

// activeGlobals collects the fleet's active global ids (ascending) and
// the per-shard active counts.
func activeGlobals(f *shard.Fleet) ([]int, []int) {
	var active []int
	perShard := make([]int, f.K())
	for s := 0; s < f.K(); s++ {
		for _, g := range f.ShardNodes(s) {
			active = append(active, int(g))
			perShard[s]++
		}
	}
	sort.Ints(active)
	return active, perShard
}

// nextChurnOp draws one membership change valid under the per-shard
// floor: a join of a random dormant id, or a leave of a random active
// id whose shard stays above minShard.
func nextChurnOp(rng *rand.Rand, universe, k, minShard int, active []int, perShard []int) (churn.Op, bool) {
	if rng.Intn(2) == 0 {
		var eligible []int
		for _, g := range active {
			if perShard[g%k] > minShard {
				eligible = append(eligible, g)
			}
		}
		if len(eligible) > 0 {
			return churn.Op{Kind: churn.Leave, Base: eligible[rng.Intn(len(eligible))]}, true
		}
	}
	isActive := make(map[int]bool, len(active))
	for _, g := range active {
		isActive[g] = true
	}
	var dormant []int
	for g := 0; g < universe; g++ {
		if !isActive[g] {
			dormant = append(dormant, g)
		}
	}
	if len(dormant) == 0 {
		return churn.Op{}, false
	}
	return churn.Op{Kind: churn.Join, Base: dormant[rng.Intn(len(dormant))]}, true
}

// applyToActive folds one committed op into the tracked membership.
func applyToActive(o churn.Op, active []int, perShard []int, k int) ([]int, []int) {
	if o.Kind == churn.Join {
		active = append(active, o.Base)
		sort.Ints(active)
		perShard[o.Base%k]++
		return active, perShard
	}
	for i, g := range active {
		if g == o.Base {
			active = append(active[:i], active[i+1:]...)
			break
		}
	}
	perShard[o.Base%k]--
	return active, perShard
}
