package main

import (
	"fmt"
	"math"
	"math/rand"

	"rings/internal/bitio"
	"rings/internal/distlabel"
	"rings/internal/metric"
	"rings/internal/stats"
	"rings/internal/triangulation"
	"rings/internal/workload"
)

// expTriangulation reproduces E4 (Theorem 3.2): the (0,δ)-triangulation
// covers *every* pair with a certificate, its order grows like log n on
// scale-spread metrics, and the shared-beacon baseline of [33,50] leaves
// an ε-fraction of pairs uncovered at the same beacon budget.
func expTriangulation(seed int64, quick bool) error {
	section("E4 / Theorem 3.2 — (0,δ)-triangulation vs shared beacons")
	delta := 0.5
	rng := rand.New(rand.NewSource(seed))

	sizes := []int{16, 32, 64, 128}
	if quick {
		sizes = []int{16, 32}
	}
	shape := stats.NewTable("workload", "n", "order", "worst D+/D-", "bad pairs",
		"baseline ε (same budget)")
	for _, n := range sizes {
		line, err := metric.ExponentialLine(n, 2)
		if err != nil {
			return err
		}
		idx := workload.NewIndex(line)
		tri, err := triangulation.New(idx, delta)
		if err != nil {
			return err
		}
		st, err := tri.VerifyAllPairs()
		if err != nil {
			return err
		}
		k := tri.Order()
		if k > idx.N() {
			k = idx.N()
		}
		shared, err := triangulation.NewSharedBeacons(idx, k, rng)
		if err != nil {
			return err
		}
		shape.AddRow(fmt.Sprintf("expline-n%d", n), n, tri.Order(), st.WorstRatio,
			st.BadPairs, shared.BadPairFraction(delta))
	}
	fmt.Print(shape.String())
	fmt.Println("\nOrder grows by a ~constant increment per doubling of n (the paper's")
	fmt.Println("O_δ(log n)); the baseline's ε > 0 is the \"obvious flaw\" Theorem 3.2 fixes.")

	side, cubeN, latN := 8, 100, 100
	if quick {
		side, cubeN, latN = 6, 50, 50
	}
	grid, err := workload.Grid(side)
	if err != nil {
		return err
	}
	cube, err := workload.Cube(cubeN, seed)
	if err != nil {
		return err
	}
	lat, err := workload.Latency(latN, seed+1)
	if err != nil {
		return err
	}
	fam := stats.NewTable("workload", "order", "worst D+/D-", "mean D+/D-", "bad pairs", "label bits(max)")
	for _, inst := range []workload.MetricInstance{grid, cube, lat} {
		tri, err := triangulation.New(inst.Idx, delta)
		if err != nil {
			return err
		}
		st, err := tri.VerifyAllPairs()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
		bits, err := tri.MaxLabelBits()
		if err != nil {
			return err
		}
		fam.AddRow(inst.Name, tri.Order(), st.WorstRatio, st.MeanRatio, st.BadPairs, bits)
	}
	fmt.Println()
	fmt.Print(fam.String())
	fmt.Println("\nOn unit-scale metrics the paper's worst-case ring constants exceed n, so the")
	fmt.Println("order saturates at n (documented in DESIGN.md §4); correctness is unaffected.")
	return nil
}

// expDistanceLabels reproduces E5 (Theorem 3.4): label sizes as the
// aspect ratio explodes with n fixed — the (log n)(log log ∆) regime —
// against the [44]-style scheme that pays global IDs per beacon, and
// accuracy of the label-only estimates.
func expDistanceLabels(seed int64, quick bool) error {
	section("E5 / Theorem 3.4 — distance labels vs aspect ratio")
	delta := 0.5
	n := 48
	aspects := []float64{60, 300, 900}
	if quick {
		n, aspects = 24, []float64{60, 300}
	}
	tbl := stats.NewTable("workload", "log2 ∆", "thm3.4 bits(max)", "[44]-style bits(max)",
		"ψ-ptr bits", "ID bits", "worst D+/d", "bad pairs")
	for _, la := range aspects {
		inst, err := workload.ExpLine(n, la)
		if err != nil {
			return err
		}
		scheme, err := distlabel.New(inst.Idx, delta)
		if err != nil {
			return err
		}
		st, err := scheme.VerifyAllPairs()
		if err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
		bits, err := scheme.MaxLabelBits()
		if err != nil {
			return err
		}
		simple, err := distlabel.NewSimple(inst.Idx, delta)
		if err != nil {
			return err
		}
		simpleBits, err := simple.MaxLabelBits()
		if err != nil {
			return err
		}
		tbl.AddRow(inst.Name, math.Round(metric.LogAspect(inst.Idx)), bits, simpleBits,
			bitio.WidthFor(scheme.MaxT), bitio.WidthFor(inst.Idx.N()),
			st.WorstUpperSlack, st.BadPairs)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nWith n fixed, per-distance growth tracks the exponent field (log log ∆) for")
	fmt.Println("both schemes. Theorem 3.4 swaps the ceil(log n) global-ID cost per beacon")
	fmt.Println("(column 'ID bits') for a ceil(log N) virtual pointer ('ψ-ptr bits',")
	fmt.Println("N = max|T_u| = O(K² log n log ∆)); the asymptotic win needs n >> K, so at")
	fmt.Println("lab scale the ζ-map overhead keeps thm3.4's total above the [44] scheme —")
	fmt.Println("the shape to check is the two width columns, not the totals.")
	return nil
}
