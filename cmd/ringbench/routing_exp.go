package main

import (
	"fmt"
	"math"

	"rings/internal/graph"
	"rings/internal/metric"
	"rings/internal/routing"
	"rings/internal/stats"
	"rings/internal/workload"
)

// expTable1 reproduces Table 1: (1+δ)-stretch routing schemes on doubling
// graphs — routing table and packet header sizes, with measured stretch.
// Rows: the trivial full-table baseline, the Talwar-style global-id
// comparator, Theorem 2.1 and Theorem 4.1. The paper's contrast to
// verify: Thm 2.1 headers/labels scale with log ∆ at ceil(log K) bits per
// scale, the global-id variant pays ceil(log n) per scale, and Thm 4.1
// moves the log ∆ out of the header into the tables.
func expTable1(seed int64, quick bool) error {
	section("E1 / Table 1 — routing schemes on doubling graphs")
	side, pathN := 9, 28
	if quick {
		side, pathN = 6, 16
	}
	gg, err := workload.GridGraph(side, seed)
	if err != nil {
		return err
	}
	ep, err := workload.ExpPath(pathN, 8) // log2 aspect ~ 3*(n-2)
	if err != nil {
		return err
	}
	delta := 0.5
	tbl := stats.NewTable("workload", "scheme", "stretch(max)", "stretch(mean)",
		"table bits(max)", "label bits(max)", "header bits(max)", "hops(max)")
	for _, inst := range []workload.GraphInstance{gg, ep} {
		schemes := make([]routing.Scheme, 0, 4)
		if s, err := routing.NewFullTable(inst.G); err == nil {
			schemes = append(schemes, s)
		}
		if s, err := routing.NewThm21Global(inst.G, delta); err == nil {
			schemes = append(schemes, s)
		}
		if s, err := routing.NewThm21(inst.G, delta); err == nil {
			schemes = append(schemes, s)
		} else {
			return fmt.Errorf("thm2.1 on %s: %w", inst.Name, err)
		}
		if s, err := routing.NewThm41(inst.G, delta); err == nil {
			schemes = append(schemes, s)
		} else {
			return fmt.Errorf("thm4.1 on %s: %w", inst.Name, err)
		}
		for _, s := range schemes {
			st, err := routing.Evaluate(s, inst.Idx, 1, 60*inst.G.N())
			if err != nil {
				return fmt.Errorf("%s on %s: %w", s.Name(), inst.Name, err)
			}
			tbl.AddRow(inst.Name, s.Name(), st.MaxStretch, st.MeanStretch,
				st.MaxTableBits, st.MaxLabelBits, st.MaxHeaderBits, st.MaxHops)
		}
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nδ = %v for all compact schemes; full-table is the stretch-1 baseline.\n", delta)
	return nil
}

// expTable2 reproduces Table 2: routing schemes on doubling *metrics*,
// where the scheme also chooses the overlay and the out-degree is a
// measured cost.
func expTable2(seed int64, quick bool) error {
	section("E2 / Table 2 — routing schemes on doubling metrics (overlays)")
	side, lineN := 8, 32
	if quick {
		side, lineN = 5, 20
	}
	grid, err := workload.Grid(side)
	if err != nil {
		return err
	}
	line, err := workload.ExpLine(lineN, float64(lineN)*2)
	if err != nil {
		return err
	}
	delta := 0.5
	tbl := stats.NewTable("workload", "scheme", "out-degree", "stretch(max)",
		"table bits(max)", "header bits(max)")
	for _, inst := range []workload.MetricInstance{grid, line} {
		type metricScheme struct {
			s   routing.Scheme
			err error
		}
		builds := []metricScheme{}
		if s, err := routing.NewThm21Metric(inst.Idx, delta); err == nil {
			builds = append(builds, metricScheme{s: s})
		} else {
			return err
		}
		if s, err := routing.NewThm41Metric(inst.Idx, delta); err == nil {
			builds = append(builds, metricScheme{s: s})
		} else {
			return err
		}
		for _, b := range builds {
			st, err := routing.Evaluate(b.s, inst.Idx, 1, 60*inst.Idx.N())
			if err != nil {
				return fmt.Errorf("%s on %s: %w", b.s.Name(), inst.Name, err)
			}
			tbl.AddRow(inst.Name, b.s.Name(), b.s.Graph().MaxOutDegree(),
				st.MaxStretch, st.MaxTableBits, st.MaxHeaderBits)
		}
		// Theorem 4.2 row: the two-mode scheme over the symmetrized ring
		// overlay (Section 4.1 lets vt link straight to t; the stored
		// escape routes over the overlay play that role here).
		b1, over, err := b1OnOverlay(inst.Idx, delta)
		if err != nil {
			return fmt.Errorf("thmB.1 on %s: %w", inst.Name, err)
		}
		st, err := routing.Evaluate(b1, inst.Idx, 1, 80*inst.Idx.N())
		if err != nil {
			return fmt.Errorf("thmB.1 on %s: %w", inst.Name, err)
		}
		tbl.AddRow(inst.Name, "thm4.2/two-mode", over.MaxOutDegree(),
			st.MaxStretch, st.MaxTableBits, st.MaxHeaderBits)
	}
	fmt.Print(tbl.String())
	return nil
}

func b1OnOverlay(idx metric.BallIndex, delta float64) (*routing.ThmB1, *graph.Graph, error) {
	over, err := routing.RingOverlay(idx, delta)
	if err != nil {
		return nil, nil, err
	}
	s, err := routing.NewThmB1(over, delta, 0)
	if err != nil {
		return nil, nil, err
	}
	return s, over, nil
}

// expTable3 reproduces Table 3 (Appendix B): the space split between
// modes M1 and M2 of Theorem B.1, plus mode usage and stretch.
func expTable3(seed int64, quick bool) error {
	section("E3 / Table 3 — Theorem B.1 mode split (M1 vs M2)")
	side, lineN := 6, 20
	if quick {
		side, lineN = 5, 14
	}
	grid, err := workload.Grid(side)
	if err != nil {
		return err
	}
	line, err := workload.ExpLine(lineN, 160)
	if err != nil {
		return err
	}
	delta := 0.5
	tbl := stats.NewTable("workload", "M1 table bits(max)", "M2 table bits(max)",
		"header bits(max)", "label bits(max)", "stretch(max)", "pairs starting in M1", "N_delta")
	for _, inst := range []workload.MetricInstance{grid, line} {
		s, _, err := b1OnOverlay(inst.Idx, delta)
		if err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
		st, err := routing.Evaluate(s, inst.Idx, 1, 80*inst.Idx.N())
		if err != nil {
			return fmt.Errorf("%s: %w", inst.Name, err)
		}
		n := inst.Idx.N()
		m1, m2 := 0, 0
		for u := 0; u < n; u++ {
			if b := s.M1TableBits(u); b > m1 {
				m1 = b
			}
			if b := s.M2TableBits(u); b > m2 {
				m2 = b
			}
		}
		inM1, pairs := 0, 0
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				pairs++
				if s.StartsInM1(u, v) {
					inM1++
				}
			}
		}
		tbl.AddRow(inst.Name, m1, m2, st.MaxHeaderBits, st.MaxLabelBits, st.MaxStretch,
			fmt.Sprintf("%d/%d (%.0f%%)", inM1, pairs, 100*float64(inM1)/math.Max(float64(pairs), 1)),
			s.NDelta())
	}
	fmt.Print(tbl.String())
	fmt.Println("\nM1 engages when the radius ladder has no gap at the pair's scale (grids);")
	fmt.Println("gap-heavy exponential lines push pairs into M2, the regime Lemma B.5 covers.")
	return nil
}
