package main

import "testing"

// TestAllExperimentsQuick runs every experiment in quick mode: the
// harness is the artifact that regenerates the paper's tables, so it gets
// the same regression protection as the library.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	experiments := map[string]func(int64, bool) error{
		"build":      expBuild,
		"shard":      expShard,
		"table1":     expTable1,
		"table2":     expTable2,
		"table3":     expTable3,
		"tri":        expTriangulation,
		"dls":        expDistanceLabels,
		"sw-a":       expSmallWorldA,
		"sw-b":       expSmallWorldB,
		"sw-single":  expSingleLink,
		"sw-ul":      expULComparison,
		"substrates": expSubstrates,
		"figure1":    expFigure1,
		"figure2":    expFigure2,
	}
	for name, f := range experiments {
		t.Run(name, func(t *testing.T) {
			if err := f(1, true); err != nil {
				t.Fatalf("experiment %s: %v", name, err)
			}
		})
	}
}
