package main

import (
	"fmt"
	"math"

	"rings/internal/core"
	"rings/internal/measure"
	"rings/internal/metric"
	"rings/internal/nets"
	"rings/internal/packing"
	"rings/internal/stats"
	"rings/internal/workload"
)

// expSubstrates reproduces E10: the substrate guarantees of Section 1.1 —
// Lemma 1.1/1.2 (covers, aspect vs dimension), Lemma 1.4 (net sparsity),
// Theorem 1.3 (doubling measures) and Lemma 3.1 (packings) — measured on
// every metric family the experiments use.
func expSubstrates(seed int64, quick bool) error {
	section("E10 / Section 1.1 — substrate guarantees, measured")
	side, cubeN, lineN, latN := 8, 80, 32, 80
	if quick {
		side, cubeN, lineN, latN = 6, 40, 20, 40
	}
	grid, err := workload.Grid(side)
	if err != nil {
		return err
	}
	cube, err := workload.Cube(cubeN, seed)
	if err != nil {
		return err
	}
	line, err := workload.ExpLine(lineN, 64)
	if err != nil {
		return err
	}
	lat, err := workload.Latency(latN, seed)
	if err != nil {
		return err
	}
	tbl := stats.NewTable("workload", "n", "α̂ (doubling dim)", "log2 ∆",
		"lemma 1.2 ok", "µ doubling const", "counting doubling const", "packing(1/8) ok")
	for _, inst := range []workload.MetricInstance{grid, cube, line, lat} {
		idx := inst.Idx
		alpha := metric.DoublingDimension(idx)
		_, _, l12 := metric.CheckLemma12(idx, alpha)
		mu, err := measure.Doubling(idx)
		if err != nil {
			return err
		}
		smp, err := measure.NewSampler(idx, mu)
		if err != nil {
			return err
		}
		cSmp, err := measure.NewSampler(idx, measure.Counting(idx.N()))
		if err != nil {
			return err
		}
		p, err := packing.New(idx, cSmp, 1.0/8)
		if err != nil {
			return err
		}
		packOK := p.Verify(idx) == nil
		tbl.AddRow(inst.Name, idx.N(), alpha, math.Round(metric.LogAspect(idx)),
			l12, smp.DoublingConstant(128), cSmp.DoublingConstant(128), packOK)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nOn the exponential line the counting measure's doubling constant explodes")
	fmt.Println("while the net-tree measure (Theorem 1.3) stays 2^O(α) — the reason the")
	fmt.Println("small-world samplers weight by µ rather than by cardinality.")
	return nil
}

// expFigure1 reproduces Figure 1: the flow of ideas between the results,
// mapped to the implementation's packages.
func expFigure1(seed int64, quick bool) error {
	section("F1 / Figure 1 — flow of ideas, as implemented")
	fmt.Print(`
    basic idea: rings of neighbors ............... internal/core
      |                       \
      v                        v
    Thm 2.1: basic routing      simple: O(log ∆)-hop small worlds
      (internal/routing/thm21)     |
      |                            v
      v                         Thm 5.1a (=5.2a): out-deg ~ log∆ ... internal/smallworld/thm52.go
    Thm 3.2: triangulation         |
      (internal/triangulation)     v
      |                         Thm 5.1b (=5.2b): out-deg ~ sqrt(log∆)
      v
    Thm 3.4: distance labeling ... internal/distlabel
      |            \
      v (black box) v (techniques)
    Thm 4.1         Thm 4.2/B.1: two-mode routing
      (routing/thm41) (routing/thmb1*)

`)
	fmt.Println("Import graph mirrors the arrows: routing/thm41 imports distlabel as a black")
	fmt.Println("box; routing/thmb1 reuses distlabel's zooming, enumerations and ζ maps;")
	fmt.Println("triangulation.Construction is shared by Theorems 3.2, 3.4 and B.1.")
	return nil
}

// expFigure2 reproduces Figure 2: a concrete host-enumeration translation
// triangle (u, f, w) with the identity
// ζ_uj(ϕ_uj(f), ϕ_(f,j+1)(w)) = ϕ_(u,j+1)(w).
func expFigure2(seed int64, quick bool) error {
	section("F2 / Figure 2 — a host-enumeration translation triangle")
	inst, err := workload.Grid(5)
	if err != nil {
		return err
	}
	idx := inst.Idx
	h, err := nets.NewHierarchy(idx, nets.RoutingScales(idx))
	if err != nil {
		return err
	}
	radii := make([]float64, h.NumLevels())
	for j := range radii {
		radii[j] = 4 * h.Scale(j)
	}
	rings, err := core.BuildNetRings(idx, h, radii)
	if err != nil {
		return err
	}
	// Find a triangle (u, f, w): f in u's j-ring, w in both (j+1)-rings.
	for u := 0; u < idx.N(); u++ {
		for j := 0; j+1 < rings.NumLevels(); j++ {
			uj, uj1 := rings.Ring(u, j), rings.Ring(u, j+1)
			for a := 0; a < uj.Size(); a++ {
				f := uj.Node(a)
				if f == u {
					continue
				}
				fj1 := rings.Ring(f, j+1)
				for b := 0; b < fj1.Size(); b++ {
					w := fj1.Node(b)
					m, ok := uj1.IndexOf(w)
					if !ok || w == f || w == u {
						continue
					}
					fmt.Printf("u=%d, f=%d (level %d), w=%d (level %d)\n", u, f, j, w, j+1)
					fmt.Printf("  ϕ_u%d(f)        = %d   (f is the %d-th j-ring neighbor of u)\n", j, a, a)
					fmt.Printf("  ϕ_(f,%d)(w)     = %d   (w is the %d-th (j+1)-ring neighbor of f)\n", j+1, b, b)
					fmt.Printf("  ζ_u%d(%d, %d)     = %d   (translated into u's (j+1)-ring)\n", j, a, b, m)
					fmt.Printf("  ϕ_(u,%d)(w)     = %d   ✓ identity holds\n", j+1, m)
					fmt.Println("\nThe packet can follow w through u's table knowing only local indices —")
					fmt.Println("no ceil(log n)-bit global identifiers anywhere (the paper's Figure 2).")
					return nil
				}
			}
		}
	}
	return fmt.Errorf("no translation triangle found (unexpected)")
}
