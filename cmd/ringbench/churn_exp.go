package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rings/internal/churn"
	"rings/internal/oracle"
	"rings/internal/stats"
	"rings/internal/version"
	"rings/internal/workload"
)

// churnBenchFile is the BENCH_churn.json schema: one row per instance
// size comparing localized repair against the full rebuild on the same
// surviving node set.
type churnBenchFile struct {
	Schema       string          `json:"schema"`
	BuildVersion string          `json:"build_version"`
	Seed         int64           `json:"seed"`
	Rows         []churnBenchRow `json:"rows"`
}

const churnBenchSchema = "rings/bench-churn/v1"

// churnBenchRow is one measured size.
type churnBenchRow struct {
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Ops      int    `json:"ops"`
	// RebuildSec is a full from-scratch build (index included) on the
	// post-trace surviving node set — what every mutation used to cost.
	RebuildSec float64 `json:"rebuild_sec"`
	// Per-op repair wall-clock, split by direction.
	JoinAvgSec  float64 `json:"join_avg_sec"`
	LeaveAvgSec float64 `json:"leave_avg_sec"`
	RepairAvg   float64 `json:"repair_avg_sec"`
	RepairMax   float64 `json:"repair_max_sec"`
	// RepairedAvg is the mean repaired-label count per op (ReusedAvg is
	// its complement: labels structurally shared with the previous
	// snapshot).
	RepairedAvg   float64 `json:"repaired_labels_avg"`
	ReusedAvg     float64 `json:"reused_labels_avg"`
	FullFallbacks int64   `json:"full_fallbacks"`
	// Speedup is RebuildSec / RepairAvg — the headline EXPERIMENTS.md C1
	// tracks (criterion: >= 10x at n=2048, latency/tuned).
	Speedup float64 `json:"speedup"`
}

// expChurn measures single-op join/leave repair latency against the
// full-rebuild baseline across a size sweep on the latency workload
// (labels scheme, tuned profile, routing disabled — the router has no
// localized repair and would otherwise dominate both sides; see
// DESIGN.md §8).
func expChurn(seed int64, quick bool) error {
	section("C1 / churn: localized repair vs full rebuild")
	sizes := []int{256, 512, 1024}
	if quick {
		sizes = []int{128, 256}
	}
	if buildSizes != "" {
		sizes = sizes[:0]
		for _, tok := range strings.Split(buildSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 16 {
				return fmt.Errorf("bad -sizes entry %q", tok)
			}
			sizes = append(sizes, n)
		}
	}
	ops := 16
	if quick {
		ops = 8
	}

	tbl := stats.NewTable("n", "rebuild", "join avg", "leave avg", "repair avg", "repair max",
		"repaired/op", "reused/op", "fallbacks", "speedup")
	var rows []churnBenchRow
	for _, n := range sizes {
		ocfg := oracle.Config{
			Workload:    "latency",
			N:           n,
			Seed:        seed,
			Scheme:      oracle.SchemeLabels,
			Profile:     oracle.ProfileTuned,
			Backend:     benchBackend,
			Workers:     benchWorkers,
			SkipRouting: true,
		}
		m, err := churn.NewMutator(churn.Config{Oracle: ocfg})
		if err != nil {
			return fmt.Errorf("churn n=%d: %w", n, err)
		}
		spec := workload.MetricSpec{Name: "latency", N: n, Seed: seed}
		tr, err := workload.GenerateChurnTrace(spec, 0, workload.ChurnTraceConfig{Ops: ops, Seed: seed + 1})
		if err != nil {
			return err
		}
		var joinSec, leaveSec, repairedSum, reusedSum, maxSec float64
		var joins, leaves int
		for _, op := range tr.Ops {
			kind := churn.Leave
			if op.Join {
				kind = churn.Join
			}
			if _, err := m.Apply(churn.Op{Kind: kind, Base: op.Base}); err != nil {
				return fmt.Errorf("churn n=%d op: %w", n, err)
			}
			last := m.Stats().Last
			if op.Join {
				joinSec += last.ElapsedSec
				joins++
			} else {
				leaveSec += last.ElapsedSec
				leaves++
			}
			if last.ElapsedSec > maxSec {
				maxSec = last.ElapsedSec
			}
			repairedSum += float64(last.RepairedLabels)
			reusedSum += float64(last.ReusedLabels)
		}
		measured := joins + leaves
		if measured == 0 {
			return fmt.Errorf("churn n=%d: empty trace", n)
		}
		// Full rebuild on the exact surviving node set (what a serving
		// deployment without this engine pays per membership change).
		ref, err := oracle.BuildSnapshotOver(m.Config().Oracle, m.FrozenSpace(), "churn-baseline")
		if err != nil {
			return err
		}
		row := churnBenchRow{
			N:             m.N(),
			Workload:      m.Snapshot().Name,
			Scheme:        ocfg.Scheme,
			Ops:           measured,
			RebuildSec:    ref.Build.TotalSec,
			RepairAvg:     (joinSec + leaveSec) / float64(measured),
			RepairMax:     maxSec,
			RepairedAvg:   repairedSum / float64(measured),
			ReusedAvg:     reusedSum / float64(measured),
			FullFallbacks: m.Stats().FullFallbacks,
		}
		if joins > 0 {
			row.JoinAvgSec = joinSec / float64(joins)
		}
		if leaves > 0 {
			row.LeaveAvgSec = leaveSec / float64(leaves)
		}
		if row.RepairAvg > 0 {
			row.Speedup = row.RebuildSec / row.RepairAvg
		}
		rows = append(rows, row)
		tbl.AddRow(row.N, secs(row.RebuildSec), secs(row.JoinAvgSec), secs(row.LeaveAvgSec),
			secs(row.RepairAvg), secs(row.RepairMax),
			fmt.Sprintf("%.1f", row.RepairedAvg), fmt.Sprintf("%.1f", row.ReusedAvg),
			row.FullFallbacks, fmt.Sprintf("%.1fx", row.Speedup))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nRepair touches only the dirty label set; the rebuild column rebuilds every")
	fmt.Println("artifact (index included) on the identical surviving node set. Routing is")
	fmt.Println("disabled on both sides: Theorem 2.1 tables have no localized form (DESIGN.md §8).")

	if jsonOut {
		file := churnBenchFile{Schema: churnBenchSchema, BuildVersion: version.String(), Seed: seed, Rows: rows}
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(churnOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", churnOut, len(rows))
	}
	return nil
}
