package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/stats"
	"rings/internal/version"
	"rings/internal/workload"
)

// shardBenchFile is the BENCH_shard.json schema: one row per workload
// family comparing the K-shard fleet against a single engine over the
// same global instance.
type shardBenchFile struct {
	Schema       string          `json:"schema"`
	BuildVersion string          `json:"build_version"`
	Seed         int64           `json:"seed"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	Rows         []shardBenchRow `json:"rows"`
}

const shardBenchSchema = "rings/bench-shard/v1"

// shardBenchRow is one measured family.
type shardBenchRow struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Shards   int    `json:"shards"`
	Beacons  int    `json:"beacons"`

	// Build cost: the whole fleet (K concurrent shard builds) vs one
	// engine over the same global space.
	FleetBuildSec  float64 `json:"fleet_build_sec"`
	SingleBuildSec float64 `json:"single_build_sec"`

	// Per-query latency on the warm fleet, split by pair locality.
	IntraP50Us float64 `json:"intra_p50_us"`
	IntraP95Us float64 `json:"intra_p95_us"`
	CrossP50Us float64 `json:"cross_p50_us"`
	CrossP95Us float64 `json:"cross_p95_us"`

	// Cross-shard estimate quality against the true metric, measured —
	// not assumed — per instance: every sampled pair's sandwich
	// lower <= d <= upper is asserted before the stretch is recorded
	// (a violation fails the experiment), so StretchMax is a checked
	// bound for this instance. CertifiedMax is the worst upper/lower
	// ratio — the bound the beacon tier itself certifies per answer
	// without knowing d; measured stretch can never exceed it.
	StretchMean  float64 `json:"stretch_mean"`
	StretchP95   float64 `json:"stretch_p95"`
	StretchMax   float64 `json:"stretch_max"`
	CertifiedMax float64 `json:"certified_max"`
	// WithinDelta is the fraction of sampled cross pairs whose stretch
	// stays within the intra-shard guarantee 1+δ — the ε of the shared
	// beacon scheme's (ε,δ) framing.
	WithinDelta float64 `json:"within_delta"`
	CrossPairs  int     `json:"cross_pairs"`

	// Aggregate warm throughput: GOMAXPROCS closed-loop workers over a
	// mixed intra/cross pool against the fleet vs the same pool (same
	// ids) against the single engine. SpeedupX = FleetQPS / SingleQPS.
	FleetQPS  float64 `json:"fleet_qps"`
	SingleQPS float64 `json:"single_qps"`
	SpeedupX  float64 `json:"speedup_x"`
}

// shardFamilies are the four workload families at bench scale.
func shardFamilies(seed int64, quick bool) []oracle.Config {
	if quick {
		return []oracle.Config{
			{Workload: "grid", Side: 12},
			{Workload: "cube", N: 192, Seed: seed},
			{Workload: "expline", N: 192, LogAspect: 60},
			{Workload: "latency", N: 192, Seed: seed},
		}
	}
	return []oracle.Config{
		{Workload: "grid", Side: 22},
		{Workload: "cube", N: 512, Seed: seed},
		{Workload: "expline", N: 512, LogAspect: 60},
		{Workload: "latency", N: 512, Seed: seed},
	}
}

// expShard measures the sharded fleet on every workload family:
// intra vs cross latency, measured cross-shard stretch (sandwich
// checked per pair), and K-way aggregate throughput against the
// single-engine baseline. Routing and the overlay are disabled on both
// sides — the experiment isolates the estimate path, which is the
// only path the beacon tier changes.
func expShard(seed int64, quick bool) error {
	section("SH1 / shard: partitioned fleet vs single engine")
	const k = 4
	pairSample := 2000
	measure := 400 * time.Millisecond
	if quick {
		pairSample = 600
		measure = 150 * time.Millisecond
	}

	tbl := stats.NewTable("workload", "n", "intra p50", "cross p50", "stretch mean", "stretch max",
		"within 1+d", "fleet qps", "single qps", "speedup")
	var rows []shardBenchRow
	for _, cfg := range shardFamilies(seed, quick) {
		cfg.Scheme = oracle.SchemeLabels
		cfg.Backend = benchBackend
		cfg.Workers = benchWorkers
		cfg.SkipRouting = true
		cfg.SkipOverlay = true

		fleet, err := shard.NewFleet(shard.Config{Oracle: cfg, Shards: k})
		if err != nil {
			return fmt.Errorf("fleet %s: %w", cfg.Workload, err)
		}
		single, err := oracle.BuildSnapshot(cfg)
		if err != nil {
			return fmt.Errorf("single %s: %w", cfg.Workload, err)
		}
		engine := oracle.NewEngine(single, oracle.EngineOptions{})
		n := fleet.N()
		if single.N() != n {
			return fmt.Errorf("%s: fleet n=%d single n=%d", cfg.Workload, n, single.N())
		}
		spec := workload.MetricSpec{
			Name: cfg.Workload, N: cfg.N, Side: cfg.Side, LogAspect: cfg.LogAspect, Seed: cfg.Seed,
		}
		space, _, err := spec.Space()
		if err != nil {
			return err
		}

		rng := rand.New(rand.NewSource(seed + 41))
		intraPairs := make([]oracle.Pair, pairSample)
		crossPairs := make([]oracle.Pair, pairSample)
		for i := range intraPairs {
			u := rng.Intn(n)
			v := rng.Intn((n+k-1-u%k)/k)*k + u%k
			intraPairs[i] = oracle.Pair{U: u, V: v}
			u = rng.Intn(n)
			w := rng.Intn(n)
			for w%k == u%k {
				w = rng.Intn(n)
			}
			crossPairs[i] = oracle.Pair{U: u, V: w}
		}

		row := shardBenchRow{
			Workload:       fleet.Name(),
			N:              n,
			Shards:         k,
			Beacons:        fleet.Beacons(),
			FleetBuildSec:  fleet.BuildElapsed().Seconds(),
			SingleBuildSec: single.Build.TotalSec,
		}

		// Cross-shard quality: assert the sandwich against the true
		// metric for every sampled pair, then record the realized
		// stretch. This is the per-instance check of the beacon tier's
		// bound — StretchMax is measured, CertifiedMax is what the
		// answers themselves guarantee.
		var stretches []float64
		within := 0
		delta := single.Config.Delta
		for _, p := range crossPairs {
			res, err := fleet.Estimate(p.U, p.V)
			if err != nil {
				return err
			}
			d := space.Dist(p.U, p.V)
			if res.Lower > d || d > res.Upper {
				return fmt.Errorf("%s: beacon sandwich violated for (%d,%d): lower=%v d=%v upper=%v",
					row.Workload, p.U, p.V, res.Lower, d, res.Upper)
			}
			if d > 0 {
				st := res.Upper / d
				stretches = append(stretches, st)
				if st <= 1+delta {
					within++
				}
			}
			if res.Lower > 0 {
				if c := res.Upper / res.Lower; c > row.CertifiedMax {
					row.CertifiedMax = c
				}
			}
		}
		sum := stats.Summarize(stretches)
		row.StretchMean, row.StretchP95, row.StretchMax = sum.Mean, sum.P95, sum.Max
		row.WithinDelta = float64(within) / float64(len(stretches))
		row.CrossPairs = len(stretches)

		// Warm per-query latency, split by locality (one warm-up pass
		// fills the shard caches, mirroring steady-state serving).
		lat := func(pairs []oracle.Pair) stats.Summary {
			for _, p := range pairs {
				if _, err := fleet.Estimate(p.U, p.V); err != nil {
					panic(err)
				}
			}
			us := make([]float64, len(pairs))
			for i, p := range pairs {
				t0 := time.Now()
				if _, err := fleet.Estimate(p.U, p.V); err != nil {
					panic(err)
				}
				us[i] = float64(time.Since(t0)) / float64(time.Microsecond)
			}
			return stats.Summarize(us)
		}
		intraSum := lat(intraPairs)
		crossSum := lat(crossPairs)
		row.IntraP50Us, row.IntraP95Us = intraSum.P50, intraSum.P95
		row.CrossP50Us, row.CrossP95Us = crossSum.P50, crossSum.P95

		// Aggregate warm throughput over a mixed pool: the same pairs,
		// the same worker count, fleet vs single engine.
		mixed := append(append([]oracle.Pair(nil), intraPairs...), crossPairs...)
		row.FleetQPS = throughput(measure, mixed, func(p oracle.Pair) {
			if _, err := fleet.Estimate(p.U, p.V); err != nil {
				panic(err)
			}
		})
		row.SingleQPS = throughput(measure, mixed, func(p oracle.Pair) {
			if _, err := engine.Estimate(p.U, p.V); err != nil {
				panic(err)
			}
		})
		if row.SingleQPS > 0 {
			row.SpeedupX = row.FleetQPS / row.SingleQPS
		}

		rows = append(rows, row)
		tbl.AddRow(row.Workload, row.N,
			fmt.Sprintf("%.1fus", row.IntraP50Us), fmt.Sprintf("%.1fus", row.CrossP50Us),
			fmt.Sprintf("%.3f", row.StretchMean), fmt.Sprintf("%.3f", row.StretchMax),
			fmt.Sprintf("%.0f%%", row.WithinDelta*100),
			fmt.Sprintf("%.2fM", row.FleetQPS/1e6), fmt.Sprintf("%.2fM", row.SingleQPS/1e6),
			fmt.Sprintf("%.2fx", row.SpeedupX))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nIntra-shard answers are byte-identical to a standalone engine over the shard")
	fmt.Println("subspace (delegation); cross-shard answers are beacon-tier sandwich bounds,")
	fmt.Println("checked per pair against the true metric above. The >=2x K-way throughput")
	fmt.Println("criterion applies on the multi-core CI runner.")
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("NOTE: GOMAXPROCS=1 — aggregate throughput cannot exceed the single engine")
		fmt.Println("here; per-shard build/query parity above is the single-core fallback check.")
	}

	if jsonOut {
		file := shardBenchFile{
			Schema:       shardBenchSchema,
			BuildVersion: version.String(),
			Seed:         seed,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Rows:         rows,
		}
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(shardOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d rows)\n", shardOut, len(rows))
	}
	return nil
}

// throughput runs GOMAXPROCS closed-loop workers over the pair pool
// for roughly the given duration and reports queries per second.
func throughput(d time.Duration, pool []oracle.Pair, query func(oracle.Pair)) float64 {
	workers := runtime.GOMAXPROCS(0)
	var done atomic.Int64
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w * 37
			count := 0
			for time.Now().Before(deadline) {
				// Batch between clock reads so the timer is off the
				// hot path.
				for j := 0; j < 256; j++ {
					query(pool[i%len(pool)])
					i++
				}
				count += 256
			}
			done.Add(int64(count))
		}(w)
	}
	wg.Wait()
	return float64(done.Load()) / time.Since(start).Seconds()
}
