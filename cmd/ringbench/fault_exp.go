package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/version"
)

// faultBenchFile is the BENCH_fault.json schema: one row per workload
// measuring the replicated fleet's failure-handling pipeline — zero
// client-visible errors while a replica is dark, the restart→resync
// recovery time, and the hedged-read win rate against a slow replica.
type faultBenchFile struct {
	Schema       string          `json:"schema"`
	BuildVersion string          `json:"build_version"`
	Seed         int64           `json:"seed"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	Rows         []faultBenchRow `json:"rows"`
}

const faultBenchSchema = "rings/bench-fault/v1"

// faultBenchRow is one measured instance.
type faultBenchRow struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Shards   int    `json:"shards"`
	Replicas int    `json:"replicas"`

	// Healthy baseline: closed-loop intra-shard estimate throughput
	// with every replica serving.
	HealthyQPS float64 `json:"healthy_qps"`

	// Kill phase: the same load while one shard's primary is dark.
	// ErrorsDuringKill is checked, not just recorded — any nonzero
	// value fails the experiment (the failover contract is "degraded,
	// never wrong, never refused while a replica survives").
	KillWindowSec     float64 `json:"kill_window_sec"`
	QueriesDuringKill int64   `json:"queries_during_kill"`
	ErrorsDuringKill  int64   `json:"errors_during_kill"`
	KillQPS           float64 `json:"kill_qps"`
	Failovers         int64   `json:"failovers"`
	BreakerOpens      int64   `json:"breaker_opens"`

	// Recovery: restart → prober resync → every replica closed and
	// serving the current era.
	RecoverySec float64 `json:"recovery_sec"`
	Resyncs     int64   `json:"resyncs"`

	// Hedge phase (separate fleet, one artificially slow replica,
	// fixed trigger): a hedge fired after the trigger should nearly
	// always beat the slow first attempt.
	Hedges       int64   `json:"hedges"`
	HedgeWins    int64   `json:"hedge_wins"`
	HedgeWinRate float64 `json:"hedge_win_rate"`
}

// slowBackend delays every estimate by a fixed latency — the
// hedged-read test shim plugged in through Config.Transport.
type slowBackend struct {
	shard.Backend
	delay time.Duration
}

func (b slowBackend) Estimate(u, v int) (oracle.EstimateResult, error) {
	time.Sleep(b.delay)
	return b.Backend.Estimate(u, v)
}

// faultLoad runs GOMAXPROCS closed-loop workers over the intra-shard
// pair pool for roughly the window and reports queries and errors.
func faultLoad(f *shard.Fleet, pool []oracle.Pair, window time.Duration) (queries, errs int64) {
	workers := runtime.GOMAXPROCS(0)
	var q, e atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w * 137
			for time.Now().Before(deadline) {
				for j := 0; j < 64; j++ {
					p := pool[i%len(pool)]
					if _, err := f.Estimate(p.U, p.V); err != nil {
						e.Add(1)
					}
					i++
				}
				q.Add(64)
			}
		}(w)
	}
	wg.Wait()
	return q.Load(), e.Load()
}

// intraPool draws same-shard pairs: the estimates that route through
// the replica set (cross-shard answers come from the beacon tier and
// never touch failover).
func intraPool(rng *rand.Rand, n, k, size int) []oracle.Pair {
	pool := make([]oracle.Pair, size)
	for i := range pool {
		u := rng.Intn(n)
		v := rng.Intn((n+k-1-u%k)/k)*k + u%k
		pool[i] = oracle.Pair{U: u, V: v}
	}
	return pool
}

// fastRecovery are the breaker/prober knobs every fault-phase fleet
// runs with: millisecond-scale probe and backoff so the measured
// recovery time reflects the resync pipeline, not default timers.
func fastRecovery(cfg shard.Config) shard.Config {
	cfg.ProbeInterval = 2 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = 2 * time.Millisecond
	cfg.BreakerMaxBackoff = 20 * time.Millisecond
	return cfg
}

// expFault measures the replicated fleet's failure pipeline (DF1):
// healthy throughput, a kill window that must stay error-free, the
// restart→resync recovery time, and the hedged-read win rate against
// a deliberately slow replica.
func expFault(seed int64, quick bool) error {
	section("DF1 / fault: replica kill, failover and hedged reads on the replicated fleet")
	const k, r = 4, 2
	n := 256
	window := 500 * time.Millisecond
	if quick {
		n = 128
		window = 250 * time.Millisecond
	}

	cfg := oracle.Config{
		Workload: "cube", N: n, Seed: seed,
		Scheme: oracle.SchemeLabels, Backend: benchBackend, Workers: benchWorkers,
		SkipRouting: true, SkipOverlay: true,
	}
	fleet, err := shard.NewFleet(fastRecovery(shard.Config{Oracle: cfg, Shards: k, Replicas: r}))
	if err != nil {
		return err
	}
	defer fleet.Close()

	rng := rand.New(rand.NewSource(seed + 83))
	pool := intraPool(rng, fleet.N(), k, 2048)
	row := faultBenchRow{Workload: fleet.Name(), N: fleet.N(), Shards: k, Replicas: r}

	// Healthy baseline (also warms per-shard caches).
	q, e := faultLoad(fleet, pool, window)
	if e > 0 {
		return fmt.Errorf("fault: %d errors on the healthy fleet", e)
	}
	row.HealthyQPS = float64(q) / window.Seconds()

	// Kill phase: shard 0 loses its primary mid-load. The workers keep
	// hammering every shard; the replica set must absorb the loss —
	// breaker trip, failover to the restored copy — without a single
	// error surfacing.
	before := fleet.Stats()
	done := make(chan struct{})
	go func() {
		defer close(done)
		q, e = faultLoad(fleet, pool, window)
	}()
	time.Sleep(window / 8)
	if err := fleet.KillReplica(0, 0); err != nil {
		return err
	}
	<-done
	row.KillWindowSec = window.Seconds()
	row.QueriesDuringKill = q
	row.ErrorsDuringKill = e
	row.KillQPS = float64(q) / window.Seconds()
	if e > 0 {
		return fmt.Errorf("fault: %d of %d queries failed while one replica of %d was dark", e, q, r)
	}

	// Recovery: restart → prober half-opens → resync → closed+current.
	t0 := time.Now()
	if err := fleet.RestartReplica(0, 0); err != nil {
		return err
	}
	recoverDeadline := t0.Add(10 * time.Second)
	for {
		healthy := true
		for _, st := range fleet.ReplicaStatuses() {
			if st.Down || st.State != "closed" || !st.Current {
				healthy = false
				break
			}
		}
		if healthy {
			break
		}
		if time.Now().After(recoverDeadline) {
			return fmt.Errorf("fault: fleet never recovered: %+v", fleet.ReplicaStatuses())
		}
		time.Sleep(time.Millisecond)
	}
	row.RecoverySec = time.Since(t0).Seconds()
	after := fleet.Stats()
	row.Failovers = after.Failovers - before.Failovers
	row.BreakerOpens = after.BreakerOpens - before.BreakerOpens
	row.Resyncs = after.Resyncs - before.Resyncs

	// Hedge phase: a second fleet whose replica 0 answers estimates
	// 2ms late behind a fixed 200µs hedge trigger. Whenever the rotor
	// picks the slow replica first, the hedge fires and the fast copy
	// should win the race.
	hedged, err := shard.NewFleet(fastRecovery(shard.Config{
		Oracle:     cfg,
		Shards:     k,
		Replicas:   r,
		HedgeAfter: 200 * time.Microsecond,
		Transport: func(s, rep int, b shard.Backend) shard.Backend {
			if rep == 0 {
				return slowBackend{Backend: b, delay: 2 * time.Millisecond}
			}
			return b
		},
	}))
	if err != nil {
		return err
	}
	defer hedged.Close()
	if q, e = faultLoad(hedged, pool, window); e > 0 {
		return fmt.Errorf("fault: %d errors during the hedge phase", e)
	}
	hs := hedged.Stats()
	row.Hedges, row.HedgeWins = hs.Hedges, hs.HedgeWins
	if row.Hedges == 0 {
		return fmt.Errorf("fault: the 2ms-slow replica never triggered a hedge (%d queries)", q)
	}
	row.HedgeWinRate = float64(row.HedgeWins) / float64(row.Hedges)

	fmt.Printf("workload %s n=%d K=%d R=%d\n", row.Workload, row.N, row.Shards, row.Replicas)
	fmt.Printf("  healthy: %.2fM q/s; kill window %.0fms: %d queries, %d errors (%.2fM q/s, %d failovers)\n",
		row.HealthyQPS/1e6, row.KillWindowSec*1e3, row.QueriesDuringKill, row.ErrorsDuringKill,
		row.KillQPS/1e6, row.Failovers)
	fmt.Printf("  recovery: %.1fms (breaker opens %d, resyncs %d)\n",
		row.RecoverySec*1e3, row.BreakerOpens, row.Resyncs)
	fmt.Printf("  hedging vs a 2ms-slow replica: %d hedges, %d wins (%.0f%% win rate)\n",
		row.Hedges, row.HedgeWins, row.HedgeWinRate*100)
	fmt.Println("\nZero errors during the kill window is asserted, not just reported: a run")
	fmt.Println("with any client-visible failure while a replica survives exits non-zero.")

	if jsonOut {
		file := faultBenchFile{
			Schema:       faultBenchSchema,
			BuildVersion: version.String(),
			Seed:         seed,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Rows:         []faultBenchRow{row},
		}
		buf, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(faultOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (1 row)\n", faultOut)
	}
	return nil
}
