// Command ringvet runs the repo's static-analysis suite (internal/lint)
// over the module and reports every finding. Unsuppressed findings make
// it exit non-zero, so it slots straight into CI:
//
//	go run ./cmd/ringvet ./...          # human-readable findings
//	go run ./cmd/ringvet -json ./...    # one JSON object per finding
//
// The package patterns are advisory: the loader always type-checks the
// whole module (the atomics analyzer is cross-package), then the
// patterns filter which packages' findings are reported. `./...` (or no
// argument) reports everything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rings/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines")
	listAnalyzers := flag.Bool("analyzers", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ringvet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *listAnalyzers {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root, modPath)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(pkgs, analyzers)
	diags = filterByPatterns(diags, pkgs, modPath, flag.Args())

	failed := false
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			if err := enc.Encode(d); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println(d)
		}
		if !d.Suppressed {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// filterByPatterns keeps the findings whose package matches one of the
// command-line patterns. Supported shapes: "./...", "all" (everything),
// "./x/..." and "x/..." (subtree), "./x" and import paths (exact).
func filterByPatterns(diags []lint.Diagnostic, pkgs []*lint.Package, modPath string, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	match := func(ipath string) bool {
		for _, pat := range patterns {
			if pat == "./..." || pat == "..." || pat == "all" {
				return true
			}
			p := strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
			if rec, ok := strings.CutSuffix(p, "/..."); ok {
				full := modPath + "/" + rec
				if ipath == full || strings.HasPrefix(ipath, full+"/") {
					return true
				}
				continue
			}
			if ipath == p || ipath == modPath+"/"+p || (p == "." && ipath == modPath) {
				return true
			}
		}
		return false
	}
	// Map file prefixes (package dirs) to import paths so findings —
	// which carry file positions — can be filtered by package.
	dirToPath := make(map[string]string, len(pkgs))
	for _, pkg := range pkgs {
		dirToPath[pkg.Dir] = pkg.Path
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		dir := d.File
		if i := strings.LastIndexByte(dir, '/'); i >= 0 {
			dir = dir[:i]
		}
		if ipath, ok := dirToPath[dir]; ok && !match(ipath) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ringvet:", err)
	os.Exit(2)
}
