package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rings/internal/oracle"
)

func testEngine(t *testing.T) *oracle.Engine {
	t.Helper()
	snap, err := oracle.BuildSnapshot(oracle.Config{
		Workload: "cube",
		N:        48,
		Seed:     1,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return oracle.NewEngine(snap, oracle.EngineOptions{})
}

func getJSON(t *testing.T, ts *httptest.Server, path string, wantStatus int, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if !health.OK || health.N != 48 || health.Version != 1 || !health.Routing || !health.Overlay {
		t.Fatalf("healthz = %+v", health)
	}
	if !strings.HasPrefix(health.Workload, "cube-") {
		t.Errorf("workload name %q", health.Workload)
	}

	var est oracle.EstimateResult
	getJSON(t, ts, "/estimate?u=3&v=17", http.StatusOK, &est)
	direct, err := engine.Snapshot().Estimate(3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lower != direct.Lower || est.Upper != direct.Upper || !est.OK || est.Version != 1 {
		t.Fatalf("estimate over HTTP %+v vs direct %+v", est, direct)
	}

	var batch batchResponse
	postJSON(t, ts, "/batch", batchRequest{Pairs: []oracle.Pair{{U: 1, V: 2}, {U: 5, V: 9}}},
		http.StatusOK, &batch)
	if len(batch.Results) != 2 || !batch.Results[0].OK || !batch.Results[1].OK {
		t.Fatalf("batch = %+v", batch)
	}

	var near oracle.NearestResult
	getJSON(t, ts, "/nearest?target=11", http.StatusOK, &near)
	if near.Target != 11 || near.Member < 0 || len(near.Path) == 0 {
		t.Fatalf("nearest = %+v", near)
	}

	var route oracle.RouteResult
	getJSON(t, ts, "/route?src=0&dst=40", http.StatusOK, &route)
	if route.Src != 0 || route.Dst != 40 || route.Stretch < 1 || len(route.Path) == 0 {
		t.Fatalf("route = %+v", route)
	}

	var stats oracle.EngineStats
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	if stats.Version != 1 || stats.Endpoints["estimate"].Count == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestServerErrorStatuses(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	for _, path := range []string{
		"/estimate",              // missing params
		"/estimate?u=1&v=xyz",    // non-numeric
		"/estimate?u=1&v=999",    // out of range
		"/nearest?target=-2",     // out of range
		"/route?src=0&dst=10000", // out of range
	} {
		var body errorBody
		getJSON(t, ts, path, http.StatusBadRequest, &body)
		if body.Error == "" {
			t.Errorf("%s: empty error body", path)
		}
	}

	postJSON(t, ts, "/batch", batchRequest{}, http.StatusBadRequest, nil)
	tooMany := batchRequest{Pairs: make([]oracle.Pair, maxBatchPairs+1)}
	postJSON(t, ts, "/batch", tooMany, http.StatusBadRequest, nil)

	// Method mismatches are 405 from the mux method patterns.
	resp, err := ts.Client().Post(ts.URL+"/estimate?u=1&v=2", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /estimate: status %d", resp.StatusCode)
	}
}

func TestServerDisabledEndpointsAre501(t *testing.T) {
	snap, err := oracle.BuildSnapshot(oracle.Config{
		Workload:    "cube",
		N:           32,
		Seed:        1,
		Scheme:      oracle.SchemeBeacons,
		SkipRouting: true,
		SkipOverlay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(oracle.NewEngine(snap, oracle.EngineOptions{})))
	defer ts.Close()

	getJSON(t, ts, "/nearest?target=1", http.StatusNotImplemented, nil)
	getJSON(t, ts, "/route?src=0&dst=1", http.StatusNotImplemented, nil)
	// Estimates still flow.
	var est oracle.EstimateResult
	getJSON(t, ts, "/estimate?u=0&v=1", http.StatusOK, &est)
	if !est.OK {
		t.Fatalf("estimate = %+v", est)
	}
	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if health.Routing || health.Overlay {
		t.Errorf("healthz advertises disabled endpoints: %+v", health)
	}
}

func TestServerSnapshotRebuildSwaps(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	var before oracle.EstimateResult
	getJSON(t, ts, "/estimate?u=1&v=2", http.StatusOK, &before)

	var snapResp snapshotResponse
	postJSON(t, ts, "/snapshot", snapshotRequest{Seed: 7}, http.StatusOK, &snapResp)
	if snapResp.Version != 2 || snapResp.N != 48 {
		t.Fatalf("snapshot response = %+v", snapResp)
	}
	if got := engine.Snapshot().Config.Seed; got != 7 {
		t.Errorf("rebuilt seed = %d, want 7", got)
	}

	var after oracle.EstimateResult
	getJSON(t, ts, "/estimate?u=1&v=2", http.StatusOK, &after)
	if after.Version != 2 {
		t.Errorf("post-swap estimate still at version %d", after.Version)
	}

	// Empty body: seed advances by one.
	resp, err := ts.Client().Post(ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-body snapshot: status %d", resp.StatusCode)
	}
	if got := engine.Snapshot().Config.Seed; got != 8 {
		t.Errorf("seed after empty-body rebuild = %d, want 8", got)
	}

	var stats oracle.EngineStats
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	if stats.Swaps != 3 || stats.Version != 3 {
		t.Errorf("stats after rebuilds: %+v", stats)
	}
}

func TestServerConcurrentQueriesDuringRebuild(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	done := make(chan error, 4)
	for c := 0; c < 4; c++ {
		go func(c int) {
			for i := 0; i < 40; i++ {
				u, v := (c*13+i)%48, (i*7)%48
				resp, err := ts.Client().Get(fmt.Sprintf("%s/estimate?u=%d&v=%d", ts.URL, u, v))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("estimate during rebuild: status %d", resp.StatusCode)
					return
				}
			}
			done <- nil
		}(c)
	}
	postJSON(t, ts, "/snapshot", snapshotRequest{Seed: 5}, http.StatusOK, nil)
	for c := 0; c < 4; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerExposesBuildStats: the per-phase build breakdown of the
// served snapshot travels through both /stats and /snapshot, and the
// /snapshot response describes the snapshot it just built (a fresh
// breakdown, not the old one).
func TestServerExposesBuildStats(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	var stats oracle.EngineStats
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	b := stats.Build
	if b.N != 48 || b.Scheme != oracle.SchemeLabels || b.Workers < 1 {
		t.Fatalf("stats.build = %+v", b)
	}
	if b.TotalSec <= 0 || b.LabelsTotalSec <= 0 || b.OverlaySec <= 0 || b.RouterSec <= 0 {
		t.Fatalf("stats.build phases not populated: %+v", b)
	}
	if sum := b.ZSetsSec + b.TSetsSec + b.HostEnumsSec + b.LabelFillSec; sum <= 0 || sum > b.LabelsTotalSec {
		t.Fatalf("label sub-phases %v inconsistent with total %v", sum, b.LabelsTotalSec)
	}

	var snapResp snapshotResponse
	postJSON(t, ts, "/snapshot", snapshotRequest{Seed: 9}, http.StatusOK, &snapResp)
	if snapResp.Build.N != 48 || snapResp.Build.TotalSec <= 0 {
		t.Fatalf("snapshot.build = %+v", snapResp.Build)
	}
	if snapResp.Build.TotalSec > snapResp.BuildSec {
		t.Fatalf("phase total %v exceeds build_sec %v", snapResp.Build.TotalSec, snapResp.BuildSec)
	}

	// The engine now serves the rebuilt snapshot's breakdown.
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	if stats.Version != snapResp.Version || stats.Build.TotalSec != snapResp.Build.TotalSec {
		t.Fatalf("stats after swap: version %d build %+v, want version %d build %+v",
			stats.Version, stats.Build, snapResp.Version, snapResp.Build)
	}
}
