package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"rings/internal/shard"
	ver "rings/internal/version"
)

// Fleet-mode handlers: the same HTTP surface over a shard.Fleet. Node
// ids in requests and responses are global (owner = id mod shards);
// estimates whose endpoints live in different shards come from the
// beacon tier and carry "cross": true.

type fleetBatchResponse struct {
	Results []shard.EstimateResult `json:"results"`
}

func (s *server) handleFleetHealthz(w http.ResponseWriter) {
	// Shard 0 is representative: every shard builds from the same
	// recipe, so scheme and artifact toggles are uniform. Version is
	// the maximum across shards (each shard's engine versions its own
	// swaps independently).
	snap := s.fleet.ShardSnapshot(0)
	var version int64
	for i := 0; i < s.fleet.K(); i++ {
		if v := s.fleet.ShardSnapshot(i).Version; v > version {
			version = v
		}
	}
	down := s.fleet.ReplicasDown()
	writeJSON(w, http.StatusOK, healthBody{
		OK:           true,
		Version:      version,
		N:            s.fleet.N(),
		Workload:     s.fleet.Name(),
		Scheme:       snap.Config.Scheme,
		Routing:      snap.Router != nil,
		Overlay:      snap.Overlay != nil,
		Shards:       s.fleet.K(),
		Universe:     s.fleet.Universe(),
		Replicas:     s.fleet.Replicas(),
		ReplicasDown: down,
		Degraded:     down > 0,
		Objects:      s.objectsHealthBody(),
		UptimeSec:    time.Since(s.start).Seconds(),
		BuildVersion: ver.String(),
	})
}

// replicaListBody frames GET /replica.
type replicaListBody struct {
	Replicas int                   `json:"replicas"`
	Down     int                   `json:"down"`
	Epoch    int64                 `json:"epoch"`
	Roster   []shard.ReplicaStatus `json:"roster"`
}

func (s *server) handleReplicaList(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{
			Error: "replica administration needs fleet mode (-shards or -replicas)",
			Code:  codeNotImplemented,
		})
		return
	}
	writeJSON(w, http.StatusOK, replicaListBody{
		Replicas: s.fleet.Replicas(),
		Down:     s.fleet.ReplicasDown(),
		Epoch:    s.fleet.Epoch(),
		Roster:   s.fleet.ReplicaStatuses(),
	})
}

// replicaAdminRequest is the POST /replica body: the chaos harness's
// kill switch ({"shard":0,"replica":1,"action":"kill"} / "restart").
type replicaAdminRequest struct {
	Shard   int    `json:"shard"`
	Replica int    `json:"replica"`
	Action  string `json:"action"`
}

func (s *server) handleReplicaAdmin(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{
			Error: "replica administration needs fleet mode (-shards or -replicas)",
			Code:  codeNotImplemented,
		})
		return
	}
	var req replicaAdminRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("invalid replica admin body: %v", err))
		return
	}
	var err error
	switch req.Action {
	case "kill":
		err = s.fleet.KillReplica(req.Shard, req.Replica)
	case "restart":
		err = s.fleet.RestartReplica(req.Shard, req.Replica)
	default:
		err = fmt.Errorf("action %q: want \"kill\" or \"restart\"", req.Action)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	// Report the targeted replica's fresh roster entry (the restart →
	// resync pipeline is asynchronous; pollers watch state/current).
	for _, st := range s.fleet.ReplicaStatuses() {
		if st.Shard == req.Shard && st.Replica == req.Replica {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	writeInternalError(w, "replica admin", fmt.Errorf("replica (%d,%d) vanished from the roster", req.Shard, req.Replica))
}

// handleFleetStats serves the fleet aggregation; ?shard=i narrows to
// one shard's engine report.
func (s *server) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	if raw := r.URL.Query().Get("shard"); raw != "" {
		i, err := strconv.Atoi(raw)
		if err != nil || i < 0 || i >= s.fleet.K() {
			writeError(w, fmt.Errorf("shard %q out of range [0, %d)", raw, s.fleet.K()))
			return
		}
		writeJSON(w, http.StatusOK, s.fleet.ShardEngine(i).Stats())
		return
	}
	writeJSON(w, http.StatusOK, s.fleet.Stats())
}

// fleetChurnResponse reports the commits of one mutation request: the
// fleet-wide active count plus one entry per touched shard.
type fleetChurnResponse struct {
	N       int                 `json:"n"`
	Commits []shard.ChurnCommit `json:"commits"`
}

func (s *server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	if !s.fleet.ChurnEnabled() {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: errNoChurn.Error()})
		return
	}
	var req joinRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid join body: %v", err))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	var (
		commits []shard.ChurnCommit
		err     error
	)
	if req.Base != nil && *req.Base >= 0 {
		commits, err = s.fleet.Apply([]shard.ChurnOp{{Kind: shard.ChurnJoin, Base: *req.Base}})
	} else {
		commits, err = s.fleet.AutoJoin(count)
	}
	s.finishFleetChurn(w, commits, err, errorBody{
		Error: "universe at capacity: nothing to join",
		Code:  codeAtCapacity,
	})
}

func (s *server) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	if !s.fleet.ChurnEnabled() {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: errNoChurn.Error()})
		return
	}
	var req leaveRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid leave body: %v", err))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	var (
		commits []shard.ChurnCommit
		err     error
	)
	if req.Base != nil && *req.Base >= 0 {
		commits, err = s.fleet.Apply([]shard.ChurnOp{{Kind: shard.ChurnLeave, Base: *req.Base}})
	} else {
		// Each request derives a private stream from the seed counter,
		// so concurrent leaves on different shards stay lock-free.
		rng := rand.New(rand.NewSource(s.leaveSeed.Add(1)))
		commits, err = s.fleet.AutoLeave(count, rng)
	}
	s.finishFleetChurn(w, commits, err, errorBody{
		Error: "every shard at its floor: nothing to retire",
		Code:  codeBelowFloor,
	})
}

func (s *server) finishFleetChurn(w http.ResponseWriter, commits []shard.ChurnCommit, err error, empty errorBody) {
	if err != nil {
		writeError(w, err)
		return
	}
	if len(commits) == 0 {
		writeJSON(w, http.StatusBadRequest, empty)
		return
	}
	touched := make([]int, 0, len(commits))
	for _, c := range commits {
		touched = append(touched, c.Shard)
	}
	if err := s.persistShards(touched); err != nil {
		writeInternalError(w, "persist", err)
		return
	}
	writeJSON(w, http.StatusOK, fleetChurnResponse{N: s.fleet.N(), Commits: commits})
}
