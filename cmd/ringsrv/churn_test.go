package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rings/internal/churn"
	"rings/internal/oracle"
)

func testChurnServer(t *testing.T) (*server, *httptest.Server, *churn.Mutator) {
	t.Helper()
	m, err := churn.NewMutator(churn.Config{
		Oracle:   oracle.Config{Workload: "cube", N: 32, Seed: 1, SkipRouting: true},
		MinNodes: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine := oracle.NewEngine(m.Snapshot(), oracle.EngineOptions{})
	srv := newServer(engine)
	srv.enableChurn(m, 7)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, m
}

// TestChurnEndpoints drives /join and /leave end to end: every commit
// must swap a fresh version in, report the repair stats, and keep
// /healthz's n in lockstep with the mutator.
func TestChurnEndpoints(t *testing.T) {
	_, ts, m := testChurnServer(t)

	var h healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.N != 32 {
		t.Fatalf("initial n=%d", h.N)
	}

	var join churnResponse
	postJSON(t, ts, "/join", map[string]any{"count": 2}, http.StatusOK, &join)
	if join.N != 34 || len(join.Bases) != 2 {
		t.Fatalf("join response %+v", join)
	}
	if join.Repair.RepairedLabels <= 0 {
		t.Fatalf("join repaired nothing: %+v", join.Repair)
	}

	base := 3
	var leave churnResponse
	postJSON(t, ts, "/leave", map[string]any{"base": base}, http.StatusOK, &leave)
	if leave.N != 33 {
		t.Fatalf("leave response %+v", leave)
	}
	if leave.Version <= join.Version {
		t.Fatalf("leave version %d not after join version %d", leave.Version, join.Version)
	}
	if m.InternalOf(base) != -1 {
		t.Fatalf("base %d still active after leave", base)
	}

	// Random leave (no base) and a join of a specific dormant base.
	postJSON(t, ts, "/leave", nil, http.StatusOK, &leave)
	postJSON(t, ts, "/join", map[string]any{"base": base}, http.StatusOK, &join)
	if m.InternalOf(base) < 0 {
		t.Fatalf("base %d dormant after explicit join", base)
	}

	// Invalid ops are 400s, not commits.
	postJSON(t, ts, "/join", map[string]any{"base": base}, http.StatusBadRequest, nil)
	postJSON(t, ts, "/leave", map[string]any{"base": 9999}, http.StatusBadRequest, nil)

	var cs churnStatsBody
	getJSON(t, ts, "/churn/stats", http.StatusOK, &cs)
	if !cs.Enabled || cs.Stats == nil || cs.Stats.Commits != 4 {
		t.Fatalf("churn stats %+v", cs)
	}
	if cs.Stats.Joins != 3 || cs.Stats.Leaves != 2 {
		t.Fatalf("op counts %+v", cs.Stats)
	}

	// /snapshot rebuilds are refused under churn (they would desync the
	// engine from the mutator's membership).
	postJSON(t, ts, "/snapshot", nil, http.StatusConflict, nil)

	getJSON(t, ts, "/healthz", http.StatusOK, &h)
	if h.N != m.N() {
		t.Fatalf("healthz n=%d, mutator n=%d", h.N, m.N())
	}

	// Served answers come from the delta snapshot: estimate(u,u) is 0.
	var est oracle.EstimateResult
	getJSON(t, ts, "/estimate?u=5&v=5", http.StatusOK, &est)
	if est.Upper != 0 || !est.OK {
		t.Fatalf("estimate(5,5) = %+v", est)
	}
}

// TestChurnDisabled pins the 501 behavior without -churn.
func TestChurnDisabled(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()
	postJSON(t, ts, "/join", nil, http.StatusNotImplemented, nil)
	postJSON(t, ts, "/leave", nil, http.StatusNotImplemented, nil)
	var cs churnStatsBody
	getJSON(t, ts, "/churn/stats", http.StatusOK, &cs)
	if cs.Enabled {
		t.Fatal("churn reported enabled")
	}
}

// TestGracefulServeDrainsInFlight proves the shutdown path ringsrv's
// main loop uses: a request in flight when the context is canceled
// completes with 200, and gracefulServe returns nil (clean drain).
func TestGracefulServeDrainsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inFlight := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		time.Sleep(300 * time.Millisecond)
		fmt.Fprint(w, "drained")
	})
	srv := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())

	served := make(chan error, 1)
	go func() {
		errc := make(chan error, 1)
		go func() { errc <- srv.Serve(ln) }()
		select {
		case err := <-errc:
			served <- err
		case <-ctx.Done():
			shutdownCtx, cancelT := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancelT()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				served <- err
				return
			}
			served <- nil
		}
	}()

	respc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			respc <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			respc <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		respc <- nil
	}()

	<-inFlight // the request is being handled
	cancel()   // SIGTERM equivalent: shutdown begins mid-request
	if err := <-respc; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestGracefulServeHelper exercises gracefulServe itself on a real
// listener address (ListenAndServe needs an Addr).
func TestGracefulServeHelper(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	srv := &http.Server{Addr: addr, Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gracefulServe(srv, ctx, 2*time.Second) }()
	// Wait for the listener, fire one request, cancel mid-flight.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get("http://" + addr + "/")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	respc := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			respc <- err
			return
		}
		resp.Body.Close()
		respc <- nil
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-respc; err != nil {
		t.Fatalf("request during shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("gracefulServe: %v", err)
	}
}

// TestPersistOnSwap covers -snapshot-file: every churn commit persists,
// and the file warm-starts into a snapshot with the same membership.
func TestPersistOnSwap(t *testing.T) {
	srv, ts, m := testChurnServer(t)
	path := filepath.Join(t.TempDir(), "snap.bin")
	srv.enablePersist(path)

	var join churnResponse
	postJSON(t, ts, "/join", nil, http.StatusOK, &join)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("snapshot not persisted: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("empty snapshot file")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := oracle.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if loaded.N() != m.N() {
		t.Fatalf("loaded n=%d, mutator n=%d", loaded.N(), m.N())
	}
	if loaded.Perm == nil {
		t.Fatal("churned snapshot persisted without its membership permutation")
	}
	// The restored membership is the live one, node for node.
	for u := 0; u < loaded.N(); u++ {
		if int(loaded.Perm[u]) != m.ActiveBase(u) {
			t.Fatalf("perm[%d] = %d, mutator has base %d", u, loaded.Perm[u], m.ActiveBase(u))
		}
	}
	// Write-read-write is byte-identical for churned snapshots too.
	second, err := os.CreateTemp(t.TempDir(), "resnap")
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if _, err := loaded.WriteTo(second); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(second.Name())
	if len(a) == 0 || string(a) != string(b) {
		t.Fatalf("churned snapshot round trip not byte-identical (%d vs %d bytes)", len(a), len(b))
	}
}
