package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rings/internal/objects"
)

// TestObjectsEndpointsSingle drives the object-location surface over a
// static single engine: publish/lookup/unpublish round-trips, the
// 404/400 error taxonomy, the /healthz advertisement, and the
// rings_objects_* exposition.
func TestObjectsEndpointsSingle(t *testing.T) {
	engine := testEngine(t)
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	var pub publishBody
	postJSON(t, ts, "/publish", publishRequest{Object: "x", Node: 3}, http.StatusOK, &pub)
	if pub.Object != "x" || pub.Node != 3 || pub.Stable != 3 || pub.Replicas != 1 {
		t.Fatalf("publish = %+v", pub)
	}
	postJSON(t, ts, "/publish", publishRequest{Object: "x", Node: 17}, http.StatusOK, &pub)
	if pub.Replicas != 2 {
		t.Fatalf("second publish = %+v", pub)
	}
	// Idempotent re-publish: still two replicas.
	postJSON(t, ts, "/publish", publishRequest{Object: "x", Node: 3}, http.StatusOK, &pub)
	if pub.Replicas != 2 {
		t.Fatalf("re-publish = %+v", pub)
	}

	// Every lookup answer must be the true nearest replica, bit-exact.
	snap := engine.Snapshot()
	for from := 0; from < snap.N(); from++ {
		var res lookupBody
		getJSON(t, ts, fmt.Sprintf("/lookup?object=x&from=%d", from), http.StatusOK, &res)
		wantNode, wantDist := 3, snap.Idx.Dist(3, from)
		if d := snap.Idx.Dist(17, from); d < wantDist {
			wantNode, wantDist = 17, d
		}
		if res.Node != wantNode || math.Float64bits(res.Dist) != math.Float64bits(wantDist) {
			t.Fatalf("lookup from %d: (%d, %v), want (%d, %v)", from, res.Node, res.Dist, wantNode, wantDist)
		}
		if res.Stable != res.Node || res.Replicas != 2 {
			t.Fatalf("lookup from %d: %+v", from, res)
		}
	}

	// Unknown object: 404 "not_found" — a name problem, not bad input.
	var eb errorBody
	getJSON(t, ts, "/lookup?object=nope&from=0", http.StatusNotFound, &eb)
	if eb.Code != codeNotFound {
		t.Fatalf("unknown lookup code %q", eb.Code)
	}
	postJSON(t, ts, "/unpublish", publishRequest{Object: "nope", Node: 0}, http.StatusNotFound, &eb)
	if eb.Code != codeNotFound {
		t.Fatalf("unknown unpublish code %q", eb.Code)
	}
	// Bad origin / holder: 400 taxonomy.
	getJSON(t, ts, "/lookup?object=x&from=99", http.StatusBadRequest, &eb)
	if eb.Code != codeOutOfRange {
		t.Fatalf("out-of-range lookup code %q", eb.Code)
	}
	postJSON(t, ts, "/unpublish", publishRequest{Object: "x", Node: 5}, http.StatusBadRequest, &eb)
	if eb.Code != codeNoReplica {
		t.Fatalf("no-replica unpublish code %q", eb.Code)
	}
	postJSON(t, ts, "/publish", publishRequest{Node: 1}, http.StatusBadRequest, &eb)
	if eb.Code != "" && eb.Error == "" {
		t.Fatalf("empty-name publish body %+v", eb)
	}

	postJSON(t, ts, "/unpublish", publishRequest{Object: "x", Node: 17}, http.StatusOK, &pub)
	if pub.Replicas != 1 {
		t.Fatalf("unpublish = %+v", pub)
	}

	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if health.Objects == nil || !health.Objects.Ready ||
		health.Objects.Objects != 1 || health.Objects.Replicas != 1 {
		t.Fatalf("healthz objects = %+v", health.Objects)
	}

	var stats objectsStatsBody
	getJSON(t, ts, "/objects/stats", http.StatusOK, &stats)
	if stats.Fleet != nil || stats.Single == nil {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Single.Lookups != int64(snap.N()) || stats.Single.Misses != 0 {
		t.Fatalf("stats counters = %+v", stats.Single)
	}

	body := metricsText(t, ts)
	for _, name := range []string{
		"rings_objects_lookups_total", "rings_objects_replicas",
		"rings_objects_lookup_stretch", "rings_objects_republishes_total",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// TestObjectsEndpointsChurn proves the serving layer keeps the
// directory in lockstep with churn commits: retiring a replica's node
// re-publishes the object to the next-nearest survivor, visible through
// /healthz, and lookups stay servable in the current id currency.
func TestObjectsEndpointsChurn(t *testing.T) {
	srv, ts, m := testChurnServer(t)
	srv.enableObjects(objects.Config{Seed: 1, BaseDist: m.FrozenSpace().Base().Dist})

	snap := m.Snapshot()
	stable0 := int(snap.Perm[0])
	var pub publishBody
	postJSON(t, ts, "/publish", publishRequest{Object: "obj", Node: 0}, http.StatusOK, &pub)
	if pub.Stable != stable0 || pub.Replicas != 1 {
		t.Fatalf("publish = %+v (stable0=%d)", pub, stable0)
	}

	// Retire the only holder: the commit's repair hook must move the
	// replica rather than orphan the object.
	var leave churnResponse
	postJSON(t, ts, "/leave", map[string]any{"base": stable0}, http.StatusOK, &leave)

	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if health.Objects == nil || health.Objects.Replicas != 1 || health.Objects.Republishes != 1 {
		t.Fatalf("healthz objects after leave = %+v", health.Objects)
	}

	cur := m.Snapshot()
	var res lookupBody
	getJSON(t, ts, "/lookup?object=obj&from=0", http.StatusOK, &res)
	if res.Node < 0 || res.Node >= cur.N() {
		t.Fatalf("lookup node %d outside current range [0, %d)", res.Node, cur.N())
	}
	// The answer's currencies must agree: Node is the current id of the
	// stable holder.
	if int(cur.Perm[res.Node]) != res.Stable {
		t.Fatalf("lookup node %d is stable %d, response said %d", res.Node, cur.Perm[res.Node], res.Stable)
	}
	if res.Stable == stable0 {
		t.Fatal("replica still on the retired node")
	}
}

// TestObjectsEndpointsFleet drives the same surface in fleet mode:
// global-id currency, cross-shard lookups equal to the fleet-wide brute
// force, shard attribution, and the aggregated stats body.
func TestObjectsEndpointsFleet(t *testing.T) {
	fleet, ts := testFleetServer(t, false)

	var pub publishBody
	for _, g := range []int{0, 3, 7} {
		postJSON(t, ts, "/publish", publishRequest{Object: "x", Node: g}, http.StatusOK, &pub)
	}
	if pub.Replicas != 3 || pub.Stable != 7 {
		t.Fatalf("publish = %+v", pub)
	}

	for _, from := range []int{0, 1, 2, 5, 10, 47} {
		var res lookupBody
		getJSON(t, ts, fmt.Sprintf("/lookup?object=x&from=%d", from), http.StatusOK, &res)
		wantNode, wantDist, err := fleet.TrueNearestObject("x", from)
		if err != nil {
			t.Fatal(err)
		}
		if res.Node != wantNode || math.Float64bits(res.Dist) != math.Float64bits(wantDist) {
			t.Fatalf("lookup from %d: (%d, %v), want (%d, %v)", from, res.Node, res.Dist, wantNode, wantDist)
		}
		if res.Shard == nil || *res.Shard != res.Node%3 {
			t.Fatalf("lookup from %d: shard attribution %+v", from, res)
		}
	}

	var eb errorBody
	getJSON(t, ts, "/lookup?object=nope&from=0", http.StatusNotFound, &eb)
	if eb.Code != codeNotFound {
		t.Fatalf("unknown lookup code %q", eb.Code)
	}

	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if health.Objects == nil || !health.Objects.Ready ||
		health.Objects.Objects != 1 || health.Objects.Replicas != 3 {
		t.Fatalf("healthz objects = %+v", health.Objects)
	}

	var stats objectsStatsBody
	getJSON(t, ts, "/objects/stats", http.StatusOK, &stats)
	if stats.Single != nil || stats.Fleet == nil {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Fleet.Objects != 1 || stats.Fleet.Replicas != 3 || len(stats.Fleet.PerShard) != 3 {
		t.Fatalf("fleet stats = %+v", stats.Fleet)
	}

	if !strings.Contains(metricsText(t, ts), "rings_objects_lookups_total") {
		t.Fatal("/metrics missing rings_objects_lookups_total")
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
