package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"rings/internal/objects"
	"rings/internal/oracle"
	"rings/internal/shard"
)

// Object-location endpoints (both modes):
//
//	POST /publish        {"object":"name","node":N}
//	POST /unpublish      {"object":"name","node":N}
//	GET  /lookup?object=name&from=N
//	GET  /objects/stats
//
// Node ids use the same currency as the query endpoints: current
// snapshot ids in single-engine mode (the server translates to the
// churn-stable base ids the directory stores, and answers carry both),
// global ids in fleet mode (global ids ARE the stable ids there).
// An unknown object is 404 "not_found"; a directory over a flat-only
// warm start (no index until hydration) is 503 "unavailable".

// enableObjects (re)builds the single-engine object directory over the
// engine's current snapshot (fleet mode keeps its per-shard directories
// inside shard.Fleet). Metrics is always attached: the rings_objects_*
// series exist from boot. Must be called before serving.
func (s *server) enableObjects(cfg objects.Config) {
	if s.fleet != nil {
		return
	}
	s.objMetrics = objects.NewMetrics()
	cfg.Metrics = s.objMetrics
	s.objDir = objects.New(s.engine.Snapshot(), cfg)
}

// objectsHealth is the /healthz advertisement of the object layer.
type objectsHealth struct {
	// Ready is false between a flat-only warm start and its hydration.
	Ready       bool  `json:"ready"`
	Objects     int   `json:"objects"`
	Replicas    int   `json:"replicas"`
	Republishes int64 `json:"republishes"`
}

func (s *server) objectsHealthBody() *objectsHealth {
	if s.fleet != nil {
		st := s.fleet.ObjectStats()
		return &objectsHealth{Ready: st.Ready, Objects: st.Objects, Replicas: st.Replicas, Republishes: st.Republishes}
	}
	if s.objDir == nil {
		return nil
	}
	st := s.objDir.Stats()
	return &objectsHealth{Ready: st.Ready, Objects: st.Objects, Replicas: st.Replicas, Republishes: st.Republishes}
}

type publishRequest struct {
	Object string `json:"object"`
	Node   int    `json:"node"`
}

// publishBody reports one accepted publish/unpublish: Node echoes the
// request's id currency, Stable is the churn-stable id the replica is
// tracked under (equal without churn; global ids in fleet mode).
type publishBody struct {
	Object   string `json:"object"`
	Node     int    `json:"node"`
	Stable   int    `json:"stable"`
	Replicas int    `json:"replicas"`
}

// stableFromInternal maps a current snapshot id to the churn-stable id
// behind it (identity without churn).
func stableFromInternal(snap *oracle.Snapshot, id int) (int, error) {
	if id < 0 || id >= snap.N() {
		return 0, fmt.Errorf("node %d outside [0, %d): %w", id, snap.N(), oracle.ErrNodeRange)
	}
	if snap.Perm != nil {
		return int(snap.Perm[id]), nil
	}
	return id, nil
}

func (s *server) decodePublish(w http.ResponseWriter, r *http.Request) (publishRequest, bool) {
	var req publishRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("invalid publish body: %v", err))
		return req, false
	}
	if req.Object == "" {
		writeError(w, errors.New("publish needs a non-empty \"object\""))
		return req, false
	}
	return req, true
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodePublish(w, r)
	if !ok {
		return
	}
	if s.fleet != nil {
		n, err := s.fleet.PublishObject(req.Object, req.Node)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, publishBody{Object: req.Object, Node: req.Node, Stable: req.Node, Replicas: n})
		return
	}
	stable, err := stableFromInternal(s.engine.Snapshot(), req.Node)
	if err != nil {
		writeError(w, err)
		return
	}
	n, err := s.objDir.Publish(req.Object, stable)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, publishBody{Object: req.Object, Node: req.Node, Stable: stable, Replicas: n})
}

func (s *server) handleUnpublish(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodePublish(w, r)
	if !ok {
		return
	}
	if s.fleet != nil {
		n, err := s.fleet.UnpublishObject(req.Object, req.Node)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, publishBody{Object: req.Object, Node: req.Node, Stable: req.Node, Replicas: n})
		return
	}
	stable, err := stableFromInternal(s.engine.Snapshot(), req.Node)
	if err != nil {
		writeError(w, err)
		return
	}
	n, err := s.objDir.Unpublish(req.Object, stable)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, publishBody{Object: req.Object, Node: req.Node, Stable: stable, Replicas: n})
}

// lookupBody frames GET /lookup. The embedded result's "node" is in the
// request's id currency (current snapshot id / fleet global id);
// "stable" is the churn-stable id behind it.
type lookupBody struct {
	objects.LookupResult
	Stable int `json:"stable"`
	// Fleet attribution (fleet mode only).
	Shard   *int  `json:"shard,omitempty"`
	Remote  bool  `json:"remote,omitempty"`
	Pruned  int   `json:"pruned,omitempty"`
	Refined int   `json:"refined,omitempty"`
	Epoch   int64 `json:"epoch,omitempty"`
}

func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	obj := r.URL.Query().Get("object")
	if obj == "" {
		writeError(w, errors.New("missing required parameter \"object\""))
		return
	}
	from, err := intParam(r, "from")
	if err != nil {
		writeError(w, err)
		return
	}
	if s.fleet != nil {
		res, err := s.fleet.LookupObject(obj, from)
		if err != nil {
			writeError(w, err)
			return
		}
		sh := res.Shard
		writeJSON(w, http.StatusOK, lookupBody{
			LookupResult: res.LookupResult,
			Stable:       res.Node,
			Shard:        &sh,
			Remote:       res.Remote,
			Pruned:       res.Pruned,
			Refined:      res.Refined,
			Epoch:        res.Epoch,
		})
		return
	}
	stable, err := stableFromInternal(s.engine.Snapshot(), from)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.objDir.Lookup(obj, stable)
	if err != nil {
		writeError(w, err)
		return
	}
	body := lookupBody{LookupResult: res, Stable: res.Node}
	// Answer in the same id currency the request used.
	body.Node = s.objDir.CurrentOf(res.Node)
	writeJSON(w, http.StatusOK, body)
}

// objectsStatsBody frames GET /objects/stats.
type objectsStatsBody struct {
	Single *objects.Stats     `json:"single,omitempty"`
	Fleet  *shard.ObjectStats `json:"fleet,omitempty"`
}

func (s *server) handleObjectsStats(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		st := s.fleet.ObjectStats()
		writeJSON(w, http.StatusOK, objectsStatsBody{Fleet: &st})
		return
	}
	st := s.objDir.Stats()
	writeJSON(w, http.StatusOK, objectsStatsBody{Single: &st})
}
