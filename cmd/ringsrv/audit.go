package main

import (
	"math"

	"rings/internal/telemetry"
)

// auditRecord is one served estimate queued for re-audit: the certified
// sandwich exactly as the client saw it.
type auditRecord struct {
	u, v    int
	lower   float64
	upper   float64
	version int64
	cross   bool
}

// auditor is the online stretch auditor: it samples a configurable
// fraction of served estimates and re-audits each against the exact
// distance, exporting realized-stretch and certificate-width
// histograms plus a violation counter. The serving path pays one
// sampler decision and (when sampled) one non-blocking channel send;
// the exact-distance computation runs in a background goroutine, and a
// full queue drops the sample rather than slow a query.
type auditor struct {
	reg     *telemetry.Registry
	sampler *telemetry.Sampler
	ch      chan auditRecord
	done    chan struct{}

	// trueDist resolves the exact distance for a record, or false when
	// the record is no longer auditable (snapshot swapped and ids
	// remapped, or the ground-truth index is unavailable).
	trueDist func(auditRecord) (float64, bool)

	sampled    *telemetry.Counter
	audited    *telemetry.Counter
	skipped    *telemetry.Counter
	dropped    *telemetry.Counter
	violations *telemetry.Counter
	stretch    *telemetry.Histogram
	width      *telemetry.Histogram
}

// newAuditor starts an auditor sampling roughly the given fraction of
// offers (fraction <= 0 disables sampling; the auditor still exists so
// /metrics exposes zeroed series).
func newAuditor(fraction float64, trueDist func(auditRecord) (float64, bool)) *auditor {
	n := 0
	if fraction > 0 {
		if fraction >= 1 {
			n = 1
		} else {
			n = int(math.Round(1 / fraction))
		}
	}
	reg := telemetry.NewRegistry()
	a := &auditor{
		reg:      reg,
		sampler:  telemetry.NewSampler(n),
		ch:       make(chan auditRecord, 1024),
		done:     make(chan struct{}),
		trueDist: trueDist,
		sampled: reg.Counter("rings_audit_sampled_total",
			"Served estimates sampled for audit."),
		audited: reg.Counter("rings_audit_audited_total",
			"Sampled estimates audited against the exact distance."),
		skipped: reg.Counter("rings_audit_skipped_total",
			"Sampled estimates skipped (snapshot swapped before the audit ran, or no ground-truth index)."),
		dropped: reg.Counter("rings_audit_dropped_total",
			"Sampled estimates dropped because the audit queue was full."),
		violations: reg.Counter("rings_audit_violations_total",
			"Audits where the exact distance fell outside the certified [lower, upper] sandwich."),
		stretch: reg.Histogram("rings_audit_realized_stretch",
			"Realized stretch (upper bound / exact distance) of audited estimates.", 0, 8),
		width: reg.Histogram("rings_audit_certificate_width",
			"Certificate width (upper/lower) of audited estimates.", 0, 8),
	}
	go a.run()
	return a
}

// offer submits one served estimate; it never blocks the caller.
func (a *auditor) offer(rec auditRecord) {
	if !a.sampler.Sample() {
		return
	}
	a.sampled.Inc()
	select {
	case a.ch <- rec:
	default:
		a.dropped.Inc()
	}
}

// close stops the background loop after draining queued records.
func (a *auditor) close() {
	close(a.ch)
	<-a.done
}

func (a *auditor) run() {
	defer close(a.done)
	for rec := range a.ch {
		a.audit(rec)
	}
}

func (a *auditor) audit(rec auditRecord) {
	d, ok := a.trueDist(rec)
	if !ok {
		a.skipped.Inc()
		return
	}
	a.audited.Inc()
	// Float tolerance: the sandwich is computed from the same float64
	// arithmetic, so violations here mean real certificate bugs, not
	// rounding.
	tol := 1e-9 * math.Max(1, math.Max(d, rec.upper))
	if rec.lower > d+tol || d > rec.upper+tol {
		a.violations.Inc()
	}
	if rec.lower > 0 && !math.IsInf(rec.upper, 1) {
		a.width.Observe(rec.upper / rec.lower)
	}
	switch {
	case d > 0 && !math.IsInf(rec.upper, 1):
		a.stretch.Observe(rec.upper / d)
	case d == 0 && rec.upper == 0:
		a.stretch.Observe(1)
	}
}
