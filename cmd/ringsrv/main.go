// Command ringsrv serves a distance oracle over HTTP/JSON: it builds
// the paper's structures (Theorem 3.4 labels or Theorem 3.2 beacons, the
// Meridian ring overlay, the Theorem 2.1 metric router) over a synthetic
// workload once, then answers query traffic from an oracle.Engine with
// lock-free snapshot reads and a sharded result cache.
//
//	ringsrv -workload latency -n 256 -scheme labels
//	ringsrv -workload latency -n 4096 -scheme beacons -no-routing
//
// Endpoints:
//
//	GET  /healthz                  liveness + snapshot identity
//	GET  /estimate?u=U&v=V         one (1+δ)-approximate distance estimate
//	POST /batch                    {"pairs":[{"u":U,"v":V},...]}
//	GET  /nearest?target=T         Meridian nearest-member climb
//	GET  /route?src=S&dst=D        simulated compact-routing packet
//	POST /snapshot                 rebuild on a fresh seed, zero-downtime swap
//	GET  /stats                    engine counters and latency summaries
//
// cmd/ringload is the matching closed-loop load generator.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rings/internal/oracle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsrv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8390", "listen address")
		wl         = flag.String("workload", "latency", "grid | cube | expline | latency")
		n          = flag.Int("n", 256, "node count (cube, expline, latency)")
		side       = flag.Int("side", 8, "grid side (grid)")
		logA       = flag.Float64("logaspect", 60, "log2 aspect ratio (expline)")
		seed       = flag.Int64("seed", 1, "workload seed")
		delta      = flag.Float64("delta", 0.5, "target approximation (0, 1]")
		scheme     = flag.String("scheme", oracle.SchemeLabels, "estimator: labels | beacons")
		profile    = flag.String("profile", oracle.ProfileTuned, "ring constants: paper | tuned")
		ballFactor = flag.Float64("ballfactor", 2, "tuned-profile Y-ring reach")
		verify     = flag.Bool("verify", false, "verify the triangulation after each build (O(n^2))")
		backend    = flag.String("backend", "eager", "ball-index backend: eager | lazy")
		workers    = flag.Int("workers", 0, "index build workers (0 = GOMAXPROCS)")
		members    = flag.Int("members", 4, "overlay member stride (every k-th node)")
		noRouting  = flag.Bool("no-routing", false, "skip the metric router (disables /route)")
		noOverlay  = flag.Bool("no-overlay", false, "skip the ring overlay (disables /nearest)")
		shards     = flag.Int("cache-shards", 16, "estimate cache shards")
		cacheCap   = flag.Int("cache-cap", 4096, "estimate cache entries per shard (-1 disables)")
	)
	flag.Parse()

	cfg := oracle.Config{
		Workload:        *wl,
		N:               *n,
		Side:            *side,
		LogAspect:       *logA,
		Seed:            *seed,
		Delta:           *delta,
		Scheme:          *scheme,
		Profile:         *profile,
		TunedBallFactor: *ballFactor,
		Verify:          *verify,
		Backend:         *backend,
		Workers:         *workers,
		MemberStride:    *members,
		SkipRouting:     *noRouting,
		SkipOverlay:     *noOverlay,
	}

	log.Printf("building snapshot: workload=%s scheme=%s profile=%s", *wl, *scheme, *profile)
	snap, err := oracle.BuildSnapshot(cfg)
	if err != nil {
		return err
	}
	engine := oracle.NewEngine(snap, oracle.EngineOptions{
		CacheShards:   *shards,
		CacheCapacity: *cacheCap,
	})
	log.Printf("snapshot ready: %s n=%d build=%v routing=%v overlay=%v",
		snap.Name, snap.N(), snap.BuildElapsed.Round(time.Millisecond),
		snap.Router != nil, snap.Overlay != nil)

	srv := &http.Server{Addr: *addr, Handler: newServer(engine)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving on http://%s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
