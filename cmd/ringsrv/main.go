// Command ringsrv serves a distance oracle over HTTP/JSON: it builds
// the paper's structures (Theorem 3.4 labels or Theorem 3.2 beacons, the
// Meridian ring overlay, the Theorem 2.1 metric router) over a synthetic
// workload once, then answers query traffic from an oracle.Engine with
// lock-free snapshot reads and a sharded result cache.
//
//	ringsrv -workload latency -n 256 -scheme labels
//	ringsrv -workload latency -n 4096 -scheme beacons -no-routing
//
// Endpoints:
//
//	GET  /healthz                  liveness + snapshot identity
//	GET  /estimate?u=U&v=V         one (1+δ)-approximate distance estimate
//	POST /batch                    {"pairs":[{"u":U,"v":V},...]}
//	GET  /nearest?target=T         Meridian nearest-member climb
//	GET  /route?src=S&dst=D        simulated compact-routing packet
//	POST /snapshot                 rebuild on a fresh seed, zero-downtime swap
//	GET  /stats                    engine counters and latency summaries
//	POST /join                     -churn: activate dormant nodes (localized repair + swap)
//	POST /leave                    -churn: retire active nodes (localized repair + swap)
//	GET  /churn/stats              -churn: cumulative repair report
//	GET  /metrics                  Prometheus text exposition (fleet mode: shardN_ prefixes)
//	GET  /debug/trace              sampled per-query trace ring (-trace-sample)
//	GET  /replica                  fleet: replica roster (state, era, breaker)
//	POST /replica                  fleet: {"shard":S,"replica":R,"action":"kill"|"restart"}
//	POST /publish                  object location: {"object":"name","node":N}
//	POST /unpublish                object location: {"object":"name","node":N}
//	GET  /lookup?object=O&from=N   nearest replica + certified distance
//	GET  /objects/stats            object directory report
//	/debug/pprof/*                 runtime profiles (-pprof)
//
// With -shards K the server builds a partitioned fleet (internal/shard)
// instead of one engine: the node universe splits round-robin across K
// shards, each with its own snapshot and engine, and node ids in every
// request are global. Intra-shard queries delegate to the owning
// engine; cross-shard estimates come from the shared beacon tier
// (answers carry "cross": true); cross-shard routes return 501 with
// code "cross_shard". /stats returns the fleet aggregation plus
// per-shard reports (?shard=i narrows to one engine), /snapshot is
// refused (restart to rebuild a fleet), and with -churn each join or
// leave routes to the owning shard and repairs only that shard.
//
// With -replicas R (implies fleet mode, composing with -shards) every
// shard keeps R serving copies: replica 0 is the authoritative engine
// and the rest are restored from its serialized snapshot and kept
// current by shipping on every commit, so any replica answers
// byte-identically. Reads hedge to a second replica after a latency-
// percentile trigger; a background prober circuit-breaks unhealthy
// replicas, resyncs and reinstates them; every routed operation is
// fenced on the partition-map epoch. /healthz reports degraded and
// replicas_down while redundancy is reduced, and /replica is the
// chaos-harness kill switch. Requests beyond -max-inflight are shed
// with 503 "overloaded" (never queued unbounded), and a fully-down
// shard answers 503 "unavailable" rather than falling back silently.
//
// With -churn the server owns an incremental churn engine
// (internal/churn): joins and leaves repair only the affected parts of
// the serving structures and swap a structurally shared delta snapshot
// in, so membership changes cost milliseconds instead of a rebuild.
// With -snapshot-file the server persists the snapshot on every swap
// and warm-starts from the file on boot, skipping the label build.
// Combining the two, the churn engine still persists every committed
// delta (a plain server can warm-start from it, churned membership
// included) but itself always boots fresh: its repair state cannot be
// reconstructed from codec-rounded wire labels without breaking the
// byte-identity contract.
//
// Observability: /metrics exposes every layer's counters and
// histograms in Prometheus text format (one page per process; fleet
// mode prefixes each shard's engine series with "shardN_").
// -trace-sample N records every N-th query into a lock-free ring
// served at /debug/trace; -audit F re-audits a fraction F of served
// estimates against the exact distance in the background, exporting
// realized-stretch and certificate-width histograms plus a violation
// counter. -pprof mounts net/http/pprof under /debug/pprof/.
//
// cmd/ringload is the matching closed-loop load generator (-churn
// drives the admin endpoints under query load).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rings/internal/churn"
	"rings/internal/objects"
	"rings/internal/oracle"
	"rings/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsrv:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8390", "listen address")
		wl         = flag.String("workload", "latency", "grid | cube | expline | latency")
		n          = flag.Int("n", 256, "node count (cube, expline, latency)")
		side       = flag.Int("side", 8, "grid side (grid)")
		logA       = flag.Float64("logaspect", 60, "log2 aspect ratio (expline)")
		seed       = flag.Int64("seed", 1, "workload seed")
		delta      = flag.Float64("delta", 0.5, "target approximation (0, 1]")
		scheme     = flag.String("scheme", oracle.SchemeLabels, "estimator: labels | beacons")
		profile    = flag.String("profile", oracle.ProfileTuned, "ring constants: paper | tuned")
		ballFactor = flag.Float64("ballfactor", 2, "tuned-profile Y-ring reach")
		verify     = flag.Bool("verify", false, "verify the triangulation after each build (O(n^2))")
		backend    = flag.String("backend", "eager", "ball-index backend: eager | lazy")
		workers    = flag.Int("workers", 0, "index build workers (0 = GOMAXPROCS)")
		members    = flag.Int("members", 4, "overlay member stride (every k-th node)")
		noRouting  = flag.Bool("no-routing", false, "skip the metric router (disables /route)")
		noOverlay  = flag.Bool("no-overlay", false, "skip the ring overlay (disables /nearest)")
		shards     = flag.Int("cache-shards", 16, "estimate cache shards")
		cacheCap   = flag.Int("cache-cap", 4096, "estimate cache entries per shard (-1 disables)")
		churnOn    = flag.Bool("churn", false, "enable the incremental churn engine (POST /join, /leave)")
		churnCap   = flag.Int("churn-capacity", 0, "churn universe capacity (0 = 2n; grid: the full lattice)")
		churnMin   = flag.Int("churn-min", 0, "refuse leaves below this node count (0 = default; with -shards: per shard)")
		shardK     = flag.Int("shards", 1, "serve a partitioned fleet of this many shards (1 = single engine)")
		replicaR   = flag.Int("replicas", 1, "serving replicas per shard (snapshot-shipped copies with hedged reads, health probes, breakers and failover; >1 implies fleet mode)")
		beacons    = flag.Int("beacons", 0, "cross-shard beacon count (0 = 2*ceil(log2 n)+4)")
		inflight   = flag.Int("max-inflight", 1024, "admission limit on concurrent requests; beyond it requests are shed with 503 \"overloaded\" instead of queuing (0 = unbounded; /healthz and /metrics exempt)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handler context deadline (0 disables)")
		snapFile   = flag.String("snapshot-file", "", "persist the snapshot here on every swap; warm-start from it on boot (without -churn: under -churn the engine owns membership and always boots fresh, but keeps the file current for a later plain warm start)")
		drain      = flag.Duration("drain-timeout", 5*time.Second, "in-flight request drain budget on shutdown")
		traceN     = flag.Int("trace-sample", 0, "record every N-th query into the /debug/trace ring (0 disables)")
		auditFrac  = flag.Float64("audit", 0, "re-audit this fraction of served estimates against the exact distance (0 disables)")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	cfg := oracle.Config{
		Workload:        *wl,
		N:               *n,
		Side:            *side,
		LogAspect:       *logA,
		Seed:            *seed,
		Delta:           *delta,
		Scheme:          *scheme,
		Profile:         *profile,
		TunedBallFactor: *ballFactor,
		Verify:          *verify,
		Backend:         *backend,
		Workers:         *workers,
		MemberStride:    *members,
		SkipRouting:     *noRouting,
		SkipOverlay:     *noOverlay,
	}

	if *shardK > 1 || *replicaR > 1 {
		fleetCfg := shard.Config{
			Oracle:        cfg,
			Shards:        *shardK,
			Replicas:      *replicaR,
			Beacons:       *beacons,
			Churn:         *churnOn,
			ChurnCapacity: *churnCap,
			MinShardNodes: *churnMin,
			Engine: oracle.EngineOptions{
				CacheShards:   *shards,
				CacheCapacity: *cacheCap,
			},
		}
		var fleet *shard.Fleet
		var err error
		switch {
		case *snapFile != "" && !*churnOn && shard.SnapshotFilesExist(*snapFile, *shardK):
			log.Printf("warm-starting %d-shard fleet from %s.shard*", *shardK, *snapFile)
			fleet, err = shard.OpenFleet(fleetCfg, *snapFile)
			if err != nil {
				return fmt.Errorf("fleet warm start: %w", err)
			}
			log.Printf("warm start ready: %s n=%d shards=%d (label builds skipped)",
				fleet.Name(), fleet.N(), fleet.K())
		default:
			if *snapFile != "" && *churnOn {
				// Mirrors the single-engine contract: the churn fleet owns
				// membership and boots fresh, but keeps every shard's file
				// current for a later plain warm start.
				log.Printf("churn fleet boots fresh; %s.shard* stay current for a plain warm start", *snapFile)
			}
			log.Printf("building %d-shard fleet: workload=%s scheme=%s profile=%s churn=%v",
				*shardK, *wl, *scheme, *profile, *churnOn)
			fleet, err = shard.NewFleet(fleetCfg)
			if err != nil {
				return err
			}
			log.Printf("fleet ready: %s n=%d shards=%d replicas=%d beacons=%d build=%v",
				fleet.Name(), fleet.N(), fleet.K(), fleet.Replicas(), fleet.Beacons(),
				fleet.BuildElapsed().Round(time.Millisecond))
		}
		handler := newFleetServer(fleet, *seed)
		handler.enableTelemetry(*traceN, *auditFrac)
		handler.enableLimits(*inflight, *reqTimeout)
		if *pprofOn {
			handler.enablePprof()
		}
		if *snapFile != "" {
			handler.enableFleetPersist(*snapFile)
			if err := handler.persistCurrent(); err != nil {
				return fmt.Errorf("persist %s: %w", *snapFile, err)
			}
		}
		defer fleet.Close()
		srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		log.Printf("serving on http://%s", *addr)
		err = gracefulServe(srv, ctx, *drain)
		if ctx.Err() != nil {
			log.Printf("shut down cleanly (in-flight requests drained)")
		}
		return err
	}

	var (
		snap    *oracle.Snapshot
		mutator *churn.Mutator
	)
	switch {
	case *churnOn:
		// The churn engine owns the substrate; an existing snapshot file
		// is ignored for state (membership lives in the mutator) but the
		// file still receives every committed delta below.
		log.Printf("building churn engine: workload=%s scheme=%s profile=%s", *wl, *scheme, *profile)
		var err error
		mutator, err = churn.NewMutator(churn.Config{Oracle: cfg, Capacity: *churnCap, MinNodes: *churnMin})
		if err != nil {
			return err
		}
		snap = mutator.Snapshot()
		log.Printf("churn engine ready: n=%d capacity=%d", mutator.N(), mutator.Config().Capacity)
	case *snapFile != "":
		_, err := os.Stat(*snapFile)
		switch {
		case err == nil:
			log.Printf("warm-starting from %s", *snapFile)
			// O(header) open: a v2 file is mmapped and served immediately
			// (estimates only); the full restore runs in the background and
			// swaps in routing/overlay when ready. A v1 file falls back to
			// the full decode inside OpenSnapshotFile.
			loaded, rerr := oracle.OpenSnapshotFile(*snapFile)
			if rerr != nil {
				return fmt.Errorf("warm start from %s: %w", *snapFile, rerr)
			}
			snap = loaded
			log.Printf("warm start ready: %s n=%d (label build skipped, mapped=%v)",
				snap.Name, snap.N(), snap.Flat != nil && snap.Flat.Mapped())
		case os.IsNotExist(err):
			// First boot: fall through to the cold build (which persists).
		default:
			// Anything else (permissions, I/O) must not silently cold-build
			// and then overwrite the file with a different node set.
			return fmt.Errorf("snapshot file %s: %w", *snapFile, err)
		}
		fallthrough
	default:
		if snap == nil {
			log.Printf("building snapshot: workload=%s scheme=%s profile=%s", *wl, *scheme, *profile)
			built, err := oracle.BuildSnapshot(cfg)
			if err != nil {
				return err
			}
			snap = built
			log.Printf("snapshot ready: %s n=%d build=%v routing=%v overlay=%v",
				snap.Name, snap.N(), snap.BuildElapsed.Round(time.Millisecond),
				snap.Router != nil, snap.Overlay != nil)
		}
	}

	engine := oracle.NewEngine(snap, oracle.EngineOptions{
		CacheShards:   *shards,
		CacheCapacity: *cacheCap,
	})
	handler := newServer(engine)
	handler.enableTelemetry(*traceN, *auditFrac)
	handler.enableLimits(*inflight, *reqTimeout)
	if *pprofOn {
		handler.enablePprof()
	}
	if mutator != nil {
		handler.enableChurn(mutator, *seed)
		// Rebuild the (still empty) object directory with the frozen base
		// metric, so churn repairs can re-place replicas next-nearest.
		handler.enableObjects(objects.Config{
			Seed:     cfg.Seed,
			BaseDist: mutator.FrozenSpace().Base().Dist,
		})
	}
	if *snapFile != "" {
		handler.enablePersist(*snapFile)
		if err := handler.persistCurrent(); err != nil {
			return fmt.Errorf("persist %s: %w", *snapFile, err)
		}
		if snap.Labels == nil && snap.Tri == nil && snap.Flat != nil {
			// Flat-only warm start: bring /nearest and /route online once
			// the background full restore lands.
			handler.hydrateFrom(*snapFile, snap)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving on http://%s", *addr)
	err := gracefulServe(srv, ctx, *drain)
	if ctx.Err() != nil {
		log.Printf("shut down cleanly (in-flight requests drained)")
	}
	return err
}
