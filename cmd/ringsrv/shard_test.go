package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rings/internal/oracle"
	"rings/internal/shard"
)

func testFleetServer(t *testing.T, churn bool) (*shard.Fleet, *httptest.Server) {
	t.Helper()
	fleet, err := shard.NewFleet(shard.Config{
		Oracle: oracle.Config{Workload: "cube", N: 48, Seed: 1, MemberStride: 3},
		Shards: 3,
		Churn:  churn,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newFleetServer(fleet, 1))
	t.Cleanup(ts.Close)
	return fleet, ts
}

func TestFleetServerEndpoints(t *testing.T) {
	fleet, ts := testFleetServer(t, false)

	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if !health.OK || health.N != 48 || health.Shards != 3 || health.Universe != 48 {
		t.Fatalf("healthz = %+v", health)
	}

	// Intra pair (same residue mod 3): delegated, attributed, and
	// byte-identical to the shard snapshot's direct answer.
	var est shard.EstimateResult
	getJSON(t, ts, "/estimate?u=3&v=9", http.StatusOK, &est)
	if est.Cross || est.UShard != 0 || est.VShard != 0 {
		t.Fatalf("intra estimate = %+v", est)
	}
	direct, err := fleet.Estimate(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if est.Lower != direct.Lower || est.Upper != direct.Upper {
		t.Fatalf("estimate over HTTP %+v vs direct %+v", est, direct)
	}

	// Cross pair: beacon-tier answer, flagged.
	getJSON(t, ts, "/estimate?u=3&v=10", http.StatusOK, &est)
	if !est.Cross || est.UShard == est.VShard || !est.OK || est.Upper <= 0 {
		t.Fatalf("cross estimate = %+v", est)
	}

	// Batch mixes intra and cross.
	var batch fleetBatchResponse
	postJSON(t, ts, "/batch", batchRequest{Pairs: []oracle.Pair{{U: 1, V: 4}, {U: 1, V: 5}}},
		http.StatusOK, &batch)
	if len(batch.Results) != 2 || batch.Results[0].Cross || !batch.Results[1].Cross {
		t.Fatalf("batch = %+v", batch)
	}

	// Nearest delegates to the owning shard; route within a shard
	// works, across shards is 501 with the machine-readable code.
	var near shard.NearestResult
	getJSON(t, ts, "/nearest?target=7", http.StatusOK, &near)
	if near.Shard != 7%3 || near.Target != 7 {
		t.Fatalf("nearest = %+v", near)
	}
	var route shard.RouteResult
	getJSON(t, ts, "/route?src=0&dst=6", http.StatusOK, &route)
	if route.Shard != 0 || route.Stretch < 1 {
		t.Fatalf("route = %+v", route)
	}
	resp, err := ts.Client().Get(ts.URL + "/route?src=0&dst=1")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	decodeBody(t, resp, &eb)
	if resp.StatusCode != http.StatusNotImplemented || eb.Code != codeCrossShard {
		t.Fatalf("cross route: status %d body %+v", resp.StatusCode, eb)
	}

	// /snapshot is refused in fleet mode.
	resp, err = ts.Client().Post(ts.URL+"/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &eb)
	if resp.StatusCode != http.StatusNotImplemented || eb.Code != codeNotImplemented {
		t.Fatalf("fleet snapshot: status %d body %+v", resp.StatusCode, eb)
	}

	// Fleet stats aggregate per-shard engines; ?shard narrows.
	var stats shard.FleetStats
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	if stats.Shards != 3 || stats.N != 48 || len(stats.PerShard) != 3 || stats.Requests == 0 {
		t.Fatalf("fleet stats = %+v", stats)
	}
	var es oracle.EngineStats
	getJSON(t, ts, "/stats?shard=1", http.StatusOK, &es)
	if es.Version != 1 || es.Build.N != 16 {
		t.Fatalf("shard stats = %+v", es)
	}
	getJSON(t, ts, "/stats?shard=9", http.StatusBadRequest, nil)

	// Churn endpoints are 501 on a fleet built without churn.
	resp, err = ts.Client().Post(ts.URL+"/join", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("join without churn: status %d", resp.StatusCode)
	}
	var cs churnStatsBody
	getJSON(t, ts, "/churn/stats", http.StatusOK, &cs)
	if cs.Enabled {
		t.Fatalf("churn stats without churn = %+v", cs)
	}
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestFleetServerChurnRouting(t *testing.T) {
	fleet, ts := testFleetServer(t, true)
	if fleet.Universe() != 96 {
		t.Fatalf("universe = %d", fleet.Universe())
	}

	// Explicit join of a dormant base routes to its owner (71 mod 3 = 2).
	base := 71
	var resp fleetChurnResponse
	postJSON(t, ts, "/join", joinRequest{Base: &base}, http.StatusOK, &resp)
	if resp.N != 49 || len(resp.Commits) != 1 || resp.Commits[0].Shard != 2 {
		t.Fatalf("join response = %+v", resp)
	}
	if fleet.ShardN(2) != 17 {
		t.Fatalf("shard 2 n = %d after join", fleet.ShardN(2))
	}

	// The joined node serves estimates immediately.
	var est shard.EstimateResult
	getJSON(t, ts, "/estimate?u=71&v=1", http.StatusOK, &est)
	if !est.Cross || est.UShard != 2 {
		t.Fatalf("estimate from joined node = %+v", est)
	}

	// Leave it again; the id stops serving with the out_of_range code.
	postJSON(t, ts, "/leave", leaveRequest{Base: &base}, http.StatusOK, &resp)
	if resp.N != 48 || resp.Commits[0].Shard != 2 {
		t.Fatalf("leave response = %+v", resp)
	}
	r, err := ts.Client().Get(ts.URL + "/estimate?u=71&v=1")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	decodeBody(t, r, &eb)
	if r.StatusCode != http.StatusBadRequest || eb.Code != codeOutOfRange {
		t.Fatalf("estimate of dormant node: status %d body %+v", r.StatusCode, eb)
	}

	// Auto join/leave pick something and report per-shard commits.
	postJSON(t, ts, "/join", joinRequest{Count: 3}, http.StatusOK, &resp)
	if resp.N != 51 {
		t.Fatalf("auto join: %+v", resp)
	}
	postJSON(t, ts, "/leave", leaveRequest{Count: 2}, http.StatusOK, &resp)
	if resp.N != 49 {
		t.Fatalf("auto leave: %+v", resp)
	}

	var cs churnStatsBody
	getJSON(t, ts, "/churn/stats", http.StatusOK, &cs)
	if !cs.Enabled || cs.Fleet == nil || cs.Fleet.Joins != 4 || cs.Fleet.Leaves != 3 {
		t.Fatalf("churn stats = %+v fleet=%+v", cs, cs.Fleet)
	}
	for _, ss := range cs.Fleet.PerShard {
		if ss.Churn == nil {
			t.Fatalf("shard %d missing churn stats", ss.Shard)
		}
	}
}
