package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rings/internal/oracle"
	"rings/internal/telemetry"
)

// scrapeMetrics fetches /metrics and returns the families after the
// strict exposition parser validated the page.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]*telemetry.ParsedMetric {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	parsed, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("GET /metrics: invalid exposition: %v", err)
	}
	return parsed
}

func sampleValue(t *testing.T, m *telemetry.ParsedMetric, labels map[string]string) float64 {
	t.Helper()
next:
	for _, s := range m.Samples {
		if s.Suffix != "" {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue next
			}
		}
		return s.Value
	}
	t.Fatalf("%s: no sample with labels %v", m.Name, labels)
	return 0
}

func TestMetricsSingleMode(t *testing.T) {
	srv := newServer(testEngine(t))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	getJSON(t, ts, "/estimate?u=1&v=2", http.StatusOK, nil)
	getJSON(t, ts, "/estimate?u=1&v=2", http.StatusOK, nil) // cache hit
	getJSON(t, ts, "/estimate?u=1&v=999", http.StatusBadRequest, nil)
	postJSON(t, ts, "/batch", batchRequest{Pairs: []oracle.Pair{{U: 1, V: 2}, {U: 3, V: 4}}}, http.StatusOK, nil)

	parsed := scrapeMetrics(t, ts)
	for _, name := range []string{
		"rings_build_info",
		"rings_engine_requests_total",
		"rings_engine_errors_total",
		"rings_engine_latency_us",
		"rings_engine_batch_pairs_total",
		"rings_engine_cache_events_total",
		"rings_engine_snapshot_version",
		"rings_audit_sampled_total",
		"rings_audit_realized_stretch",
		"rings_snapshot_persist_total",
		"rings_snapshot_open_us",
	} {
		if parsed[name] == nil {
			t.Errorf("/metrics: family %q missing", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := sampleValue(t, parsed["rings_engine_requests_total"], map[string]string{"endpoint": "estimate"}); got != 3 {
		t.Errorf("estimate requests = %v, want 3", got)
	}
	if got := sampleValue(t, parsed["rings_engine_errors_total"], map[string]string{"endpoint": "estimate"}); got != 1 {
		t.Errorf("estimate errors = %v, want 1", got)
	}
	if got := sampleValue(t, parsed["rings_engine_batch_pairs_total"], nil); got != 2 {
		t.Errorf("batch pairs = %v, want 2", got)
	}
	if got := sampleValue(t, parsed["rings_engine_cache_events_total"], map[string]string{"event": "hit"}); got < 1 {
		t.Errorf("cache hits = %v, want >= 1", got)
	}
}

func TestMetricsFleetMode(t *testing.T) {
	_, ts := testFleetServer(t, false)

	getJSON(t, ts, "/estimate?u=3&v=9", http.StatusOK, nil) // intra (same shard mod 3)
	getJSON(t, ts, "/estimate?u=0&v=1", http.StatusOK, nil) // cross

	parsed := scrapeMetrics(t, ts)
	for _, name := range []string{
		"rings_build_info",
		"rings_fleet_estimates_total",
		"rings_fleet_beacon_width",
		"rings_fleet_nodes",
		"rings_audit_sampled_total",
		"shard0_rings_engine_requests_total",
		"shard1_rings_engine_requests_total",
		"shard2_rings_engine_requests_total",
	} {
		if parsed[name] == nil {
			t.Errorf("/metrics: family %q missing", name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := sampleValue(t, parsed["rings_fleet_estimates_total"], map[string]string{"path": "intra"}); got != 1 {
		t.Errorf("intra estimates = %v, want 1", got)
	}
	if got := sampleValue(t, parsed["rings_fleet_estimates_total"], map[string]string{"path": "cross"}); got != 1 {
		t.Errorf("cross estimates = %v, want 1", got)
	}
}

func TestTraceEndpoint(t *testing.T) {
	srv := newServer(testEngine(t))
	srv.enableTelemetry(2, 0) // every 2nd query traced
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for i := 0; i < 10; i++ {
		getJSON(t, ts, "/estimate?u=1&v=2", http.StatusOK, nil)
	}
	getJSON(t, ts, "/estimate?u=1&v=999", http.StatusBadRequest, nil)

	var body traceBody
	getJSON(t, ts, "/debug/trace", http.StatusOK, &body)
	if body.SampleRate != 2 {
		t.Fatalf("sample_rate = %d, want 2", body.SampleRate)
	}
	// 11 estimate calls at 1-in-2 → 5 records.
	if len(body.Records) != 5 {
		t.Fatalf("got %d trace records, want 5", len(body.Records))
	}
	for _, rec := range body.Records {
		if rec.Endpoint != "estimate" {
			t.Fatalf("trace endpoint = %q", rec.Endpoint)
		}
		if rec.Err == "" && (rec.U != 1 || rec.V != 2 || !rec.OK) {
			t.Fatalf("trace record = %+v", rec)
		}
	}

	var trimmed traceBody
	getJSON(t, ts, "/debug/trace?n=2", http.StatusOK, &trimmed)
	if len(trimmed.Records) != 2 {
		t.Fatalf("?n=2 returned %d records", len(trimmed.Records))
	}
	getJSON(t, ts, "/debug/trace?n=bogus", http.StatusBadRequest, nil)
}

// TestAuditorBeacons drives a beacons-scheme engine with audit
// sampling at 100% and requires every audited sandwich to contain the
// exact distance.
func TestAuditorBeacons(t *testing.T) {
	snap, err := oracle.BuildSnapshot(oracle.Config{
		Workload: "cube",
		N:        64,
		Seed:     3,
		Scheme:   oracle.SchemeBeacons,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(oracle.NewEngine(snap, oracle.EngineOptions{}))
	srv.enableTelemetry(0, 1) // audit every served estimate
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for u := 0; u < 16; u++ {
		for v := u + 1; v < 16; v++ {
			getJSON(t, ts, fmt.Sprintf("/estimate?u=%d&v=%d", u, v), http.StatusOK, nil)
		}
	}
	pairs := make([]oracle.Pair, 0, 32)
	for i := 0; i < 32; i++ {
		pairs = append(pairs, oracle.Pair{U: 16 + i, V: 63 - i/2})
	}
	postJSON(t, ts, "/batch", batchRequest{Pairs: pairs}, http.StatusOK, nil)

	a := srv.auditor
	a.close() // drain the queue so every offered record is audited
	if a.sampled.Value() == 0 || a.audited.Value() == 0 {
		t.Fatalf("auditor idle: sampled=%d audited=%d", a.sampled.Value(), a.audited.Value())
	}
	if got := a.audited.Value() + a.skipped.Value() + a.dropped.Value(); got != a.sampled.Value() {
		t.Fatalf("audit accounting: audited+skipped+dropped=%d, sampled=%d", got, a.sampled.Value())
	}
	if v := a.violations.Value(); v != 0 {
		t.Fatalf("%d certified sandwiches violated (of %d audited)", v, a.audited.Value())
	}
	if a.stretch.Count() == 0 {
		t.Fatal("realized-stretch histogram empty after audits")
	}
}
