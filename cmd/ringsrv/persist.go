package main

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// persister owns snapshot persistence for the server: one path, one
// serialized writer at a time, latest-wins coalescing across callers.
//
// Two guarantees the naive "write path.tmp, rename" scheme lacked:
//
//   - Writers serialize on mu and each write goes to a unique
//     os.CreateTemp file, so two callers arriving from different lock
//     domains (a /snapshot rebuild and a /join repair, or two shards)
//     can never interleave bytes in one temp file and rename a corrupt
//     snapshot over a good one.
//   - The temp file is fsynced before the atomic rename, so a crash
//     right after the rename can never leave a truncated file at the
//     visible path — the warm-start path either sees the old complete
//     snapshot or the new complete snapshot.
//
// Coalescing: callers take a generation ticket before blocking on mu.
// The writer that holds the lock reads the latest snapshot and marks
// every ticket issued so far as covered; a caller whose ticket was
// covered by a later writer returns without touching the disk. Under a
// mutation burst the disk sees a handful of writes, not one per commit.
type persister struct {
	path string
	// gen counts persistence requests; covered (under mu) is the
	// highest request generation whose snapshot is known to be on disk.
	gen     atomic.Int64
	mu      sync.Mutex
	covered int64
}

func newPersister(path string) *persister { return &persister{path: path} }

// persist writes the snapshot current() yields to the path. current is
// called under the writer lock, after the coalescing check, so it
// always observes a snapshot at least as new as the caller's commit.
func (p *persister) persist(current func() io.WriterTo) error {
	if p == nil || p.path == "" {
		return nil
	}
	gen := p.gen.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.covered >= gen {
		return nil // a later writer already persisted a newer snapshot
	}
	// Every generation issued up to here is covered by the snapshot we
	// are about to read: its commit happened before its ticket, which
	// happened before this load.
	covered := p.gen.Load()
	if err := writeFileAtomic(p.path, current()); err != nil {
		return err
	}
	p.covered = covered
	return nil
}

// writeFileAtomic writes payload to a unique temp file in path's
// directory, fsyncs it, and atomically renames it over path. On any
// error the temp file is removed and path is left untouched — a
// write-interrupted file is never visible at path.
func writeFileAtomic(path string, payload io.WriterTo) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// WriteTo issues two small writes per label; buffering keeps a
	// per-commit persist at a handful of syscalls instead of thousands.
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := payload.WriteTo(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
