package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/telemetry"
	"rings/internal/version"
)

// traceRingSize is the capacity of the sampled-query trace ring: large
// enough that a slow-query hunt sees a useful window, small enough to
// be dumped in one /debug/trace response.
const traceRingSize = 1024

// enableTelemetry wires the sampled trace ring (1-in-traceSample
// queries; 0 disables) and the online stretch auditor (auditFraction of
// served estimates; 0 disables sampling but keeps the zeroed series
// exposed). Must be called before the server starts serving.
func (s *server) enableTelemetry(traceSample int, auditFraction float64) {
	if s.auditor != nil {
		s.auditor.close() // reconfiguration (main over the constructor default)
	}
	s.traceRing = telemetry.NewTraceRing(traceRingSize)
	s.traceSampler = telemetry.NewSampler(traceSample)
	s.traceSampleRate = traceSample
	s.auditor = newAuditor(auditFraction, s.auditTrueDist)
	// Build identity as the conventional constant-1 info gauge.
	telemetry.Default.GaugeFamily("rings_build_info",
		"Build identity of the serving binary (constant 1).",
		"version", version.String()).With(version.String()).Set(1)
}

// enablePprof mounts net/http/pprof on the server's mux (the package's
// init-time registration targets http.DefaultServeMux, which this
// server never serves).
func (s *server) enablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// auditTrueDist resolves the exact distance for an audit record. In
// fleet mode the record's ids are global and the full base space
// answers any pair. In single-engine mode the ids are snapshot-local:
// a record from a swapped-out snapshot is unauditable (churn remaps
// ids), as is a flat-only warm start (no ground-truth index until
// hydration) — both are counted as skipped by the auditor.
func (s *server) auditTrueDist(rec auditRecord) (float64, bool) {
	if s.fleet != nil {
		d, err := s.fleet.TrueDist(rec.u, rec.v)
		return d, err == nil
	}
	snap := s.engine.Snapshot()
	if snap.Version != rec.version || snap.Idx == nil {
		return 0, false
	}
	return snap.Idx.Dist(rec.u, rec.v), true
}

// observeEngineEstimate traces and audits one single-engine answer.
func (s *server) observeEngineEstimate(endpoint string, res oracle.EstimateResult, err error, start time.Time) {
	if err == nil {
		s.auditor.offer(auditRecord{
			u: res.U, v: res.V,
			lower: res.Lower, upper: res.Upper,
			version: res.Version,
		})
	}
	if !s.traceSampler.Sample() {
		return
	}
	rec := &telemetry.TraceRecord{
		Time:      start,
		Endpoint:  endpoint,
		Scheme:    s.engine.Snapshot().Config.Scheme,
		LatencyUs: float64(time.Since(start)) / float64(time.Microsecond),
	}
	if err != nil {
		rec.Err = err.Error()
	} else {
		rec.U, rec.V = res.U, res.V
		rec.Cached = res.Cached
		rec.Version = uint64(res.Version)
		rec.Lower, rec.Upper, rec.OK = res.Lower, res.Upper, res.OK
	}
	s.traceRing.Record(rec)
}

// observeFleetEstimate traces and audits one fleet answer.
func (s *server) observeFleetEstimate(endpoint string, res shard.EstimateResult, err error, start time.Time) {
	if err == nil {
		s.auditor.offer(auditRecord{
			u: res.U, v: res.V,
			lower: res.Lower, upper: res.Upper,
			version: res.Version,
			cross:   res.Cross,
		})
	}
	if !s.traceSampler.Sample() {
		return
	}
	rec := &telemetry.TraceRecord{
		Time:      start,
		Endpoint:  endpoint,
		Scheme:    s.fleet.ShardSnapshot(0).Config.Scheme,
		LatencyUs: float64(time.Since(start)) / float64(time.Microsecond),
	}
	if err != nil {
		rec.Err = err.Error()
	} else {
		rec.U, rec.V = res.U, res.V
		rec.Cached = res.Cached
		rec.Cross = res.Cross
		rec.ShardU, rec.ShardV = res.UShard, res.VShard
		rec.Version = uint64(res.Version)
		rec.Lower, rec.Upper, rec.OK = res.Lower, res.Upper, res.OK
	}
	s.traceRing.Record(rec)
}

// handleMetrics serves the Prometheus text exposition: the process
// Default registry (persist/open timings, build info), the auditor,
// and the engine's registries — in fleet mode the fleet registry plus
// every shard's engine (and churn) registries under "shardN_" name
// prefixes, so one page carries the whole fleet without name
// collisions.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	groups := []telemetry.Group{{R: telemetry.Default}, {R: s.auditor.reg}}
	if s.fleet != nil {
		groups = append(groups, telemetry.Group{R: s.fleet.Metrics()})
		groups = append(groups, telemetry.Group{R: s.fleet.ObjectsMetrics()})
		for i := 0; i < s.fleet.K(); i++ {
			prefix := fmt.Sprintf("shard%d_", i)
			groups = append(groups, telemetry.Group{Prefix: prefix, R: s.fleet.ShardEngine(i).Metrics()})
			if creg := s.fleet.ShardChurnMetrics(i); creg != nil {
				groups = append(groups, telemetry.Group{Prefix: prefix, R: creg})
			}
		}
	} else {
		groups = append(groups, telemetry.Group{R: s.engine.Metrics()})
		if s.mutator != nil {
			groups = append(groups, telemetry.Group{R: s.mutator.Metrics()})
		}
		if s.objMetrics != nil {
			groups = append(groups, telemetry.Group{R: s.objMetrics.Reg})
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WriteText(w, groups...); err != nil {
		// Headers are gone; the log line is the only visibility.
		log.Printf("ringsrv: write /metrics: %v", err)
	}
}

// traceBody frames /debug/trace: sampled per-query decision records,
// oldest first.
type traceBody struct {
	SampleRate int                      `json:"sample_rate"` // 1-in-N; 0 = disabled
	Records    []*telemetry.TraceRecord `json:"records"`
}

// handleTrace dumps the trace ring. ?n=K keeps only the most recent K
// records.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	records := s.traceRing.Snapshot()
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("parameter %q: want a non-negative integer, got %q", "n", raw))
			return
		}
		if n < len(records) {
			records = records[len(records)-n:]
		}
	}
	writeJSON(w, http.StatusOK, traceBody{SampleRate: s.traceSampleRate, Records: records})
}
