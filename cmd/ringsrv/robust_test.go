package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/shard/backendtest"
)

// TestHTTPBackendConformance runs the shared Backend conformance suite
// against a real ringsrv server over httptest: the HTTP client backend
// (internal/shard/transport_http.go) must return bit-for-bit the
// answers of the snapshot the server serves, with faithful error
// classes. This is the third leg of the suite (local and simnet legs
// live in internal/shard; the HTTP leg lives here to keep the shard
// package free of a ringsrv dependency).
func TestHTTPBackendConformance(t *testing.T) {
	snap, err := oracle.BuildSnapshot(oracle.Config{
		Workload:     "cube",
		N:            40,
		Seed:         5,
		MemberStride: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine := oracle.NewEngine(snap, oracle.EngineOptions{})
	ts := httptest.NewServer(newServer(engine))
	defer ts.Close()

	backendtest.Run(t, backendtest.Harness{
		Backend: shard.NewHTTPBackend(ts.URL, ts.Client()),
		Ref:     snap,
		// Ship stays nil: the ringsrv surface has no shipping endpoint,
		// and the suite then asserts Ship fails loudly (ErrUnsupported).
	})
}

// TestHTTPBackendUnavailable checks the transport-error mapping the
// breaker depends on: a dead server and a 503 both classify as
// ErrUnavailable, never as a client error.
func TestHTTPBackendUnavailable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on
	b := shard.NewHTTPBackend(dead.URL, nil)
	if _, err := b.Estimate(0, 1); !shard.IsUnavailable(err) {
		t.Fatalf("dead server: err = %v, want ErrUnavailable class", err)
	}

	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shedding", Code: codeOverloaded})
	}))
	defer overloaded.Close()
	b = shard.NewHTTPBackend(overloaded.URL, overloaded.Client())
	if _, err := b.Estimate(0, 1); !shard.IsUnavailable(err) {
		t.Fatalf("503 response: err = %v, want ErrUnavailable class", err)
	}
}

// testReplicatedFleetServer builds a K=2, R=2 fleet with fast
// recovery knobs behind an httptest server.
func testReplicatedFleetServer(t *testing.T) (*shard.Fleet, *httptest.Server) {
	t.Helper()
	fleet, err := shard.NewFleet(shard.Config{
		Oracle:            oracle.Config{Workload: "cube", N: 24, Seed: 5, MemberStride: 3, SkipRouting: true, SkipOverlay: true},
		Shards:            2,
		Replicas:          2,
		ProbeInterval:     2 * time.Millisecond,
		BreakerThreshold:  2,
		BreakerBackoff:    2 * time.Millisecond,
		BreakerMaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	ts := httptest.NewServer(newFleetServer(fleet, 1))
	t.Cleanup(ts.Close)
	return fleet, ts
}

// TestReplicaAdminAndDegradedHealth drives the kill/restart admin
// surface end to end: /replica kills a replica, /healthz reports
// degraded, queries keep flowing; killing the whole shard surfaces 503
// "unavailable" (never a silent fallback); restarts recover.
func TestReplicaAdminAndDegradedHealth(t *testing.T) {
	fleet, ts := testReplicatedFleetServer(t)

	var roster replicaListBody
	getJSON(t, ts, "/replica", http.StatusOK, &roster)
	if roster.Replicas != 2 || roster.Down != 0 || len(roster.Roster) != 4 {
		t.Fatalf("healthy roster = %+v", roster)
	}

	var st shard.ReplicaStatus
	postJSON(t, ts, "/replica", replicaAdminRequest{Shard: 0, Replica: 1, Action: "kill"},
		http.StatusOK, &st)
	if !st.Down || st.State != "open" {
		t.Fatalf("killed replica status = %+v", st)
	}

	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if !health.Degraded || health.ReplicasDown != 1 || health.Replicas != 2 {
		t.Fatalf("degraded healthz = %+v", health)
	}

	// Queries keep flowing (failover to the primary) — intra shard 0.
	var est shard.EstimateResult
	getJSON(t, ts, "/estimate?u=0&v=2", http.StatusOK, &est)
	if est.Cross {
		t.Fatalf("intra estimate = %+v", est)
	}

	// Kill the primary too: the whole shard is down. The server must
	// answer 503 "unavailable" — degraded, never wrong.
	postJSON(t, ts, "/replica", replicaAdminRequest{Shard: 0, Replica: 0, Action: "kill"},
		http.StatusOK, &st)
	resp, err := ts.Client().Get(ts.URL + "/estimate?u=0&v=2")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	decodeBody(t, resp, &eb)
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != codeUnavailable {
		t.Fatalf("dead shard over HTTP: status %d body %+v", resp.StatusCode, eb)
	}
	// Shard 1 still answers.
	getJSON(t, ts, "/estimate?u=1&v=3", http.StatusOK, &est)

	// Restart both; the prober resyncs and the fleet converges healthy.
	for r := 0; r < 2; r++ {
		postJSON(t, ts, "/replica", replicaAdminRequest{Shard: 0, Replica: r, Action: "restart"},
			http.StatusOK, &st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Fresh struct per poll: the healthy response omits its
		// zero-valued degraded fields, and json.Decode merges rather
		// than resetting, so reusing the degraded-phase struct would
		// keep the stale ReplicasDown:1 forever.
		health = healthBody{}
		getJSON(t, ts, "/healthz", http.StatusOK, &health)
		if !health.Degraded && health.ReplicasDown == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never recovered: %+v; roster: %+v", health, fleet.ReplicaStatuses())
		}
		time.Sleep(2 * time.Millisecond)
	}
	getJSON(t, ts, "/estimate?u=0&v=2", http.StatusOK, &est)

	// Unknown action and out-of-range addresses are client errors.
	postJSON(t, ts, "/replica", replicaAdminRequest{Shard: 0, Replica: 1, Action: "explode"},
		http.StatusBadRequest, nil)
	postJSON(t, ts, "/replica", replicaAdminRequest{Shard: 9, Replica: 0, Action: "kill"},
		http.StatusBadRequest, nil)
}

// TestReplicaAdminSingleEngine: without a fleet there is no roster.
func TestReplicaAdminSingleEngine(t *testing.T) {
	ts := httptest.NewServer(newServer(testEngine(t)))
	defer ts.Close()
	getJSON(t, ts, "/replica", http.StatusNotImplemented, nil)
	postJSON(t, ts, "/replica", replicaAdminRequest{Action: "kill"}, http.StatusNotImplemented, nil)
}

// TestOverloadShedding proves the admission semaphore sheds instead of
// queuing: with a 1-slot limit held by a deliberately stalled request,
// further queries get an immediate 503 "overloaded" while /healthz
// (exempt) still answers.
func TestOverloadShedding(t *testing.T) {
	srv := newServer(testEngine(t))
	srv.enableLimits(1, 0)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only slot: a /batch whose body never finishes arriving
	// keeps its handler parked in the JSON decoder.
	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	stalled := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		stalled <- err
	}()
	if _, err := pw.Write([]byte(`{"pairs":[`)); err != nil {
		t.Fatal(err)
	}

	// The slot is taken once shedding starts; poll until it does.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/estimate?u=0&v=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			var eb errorBody
			decodeBody(t, resp, &eb)
			if eb.Code != codeOverloaded {
				t.Fatalf("shed with code %q, want %q", eb.Code, codeOverloaded)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("server never shed load with its one slot occupied")
		}
		time.Sleep(time.Millisecond)
	}

	// Liveness endpoints bypass admission.
	var health healthBody
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if !health.OK {
		t.Fatalf("healthz under overload = %+v", health)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "rings_engine") {
		t.Fatalf("metrics under overload: status %d", resp.StatusCode)
	}

	// Release the stalled request; the slot frees and queries flow.
	pw.CloseWithError(io.ErrClosedPipe)
	<-stalled
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/estimate?u=0&v=1")
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the stalled request ended")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequestDeadlinePlumbed: the per-request context deadline is
// installed by ServeHTTP (handlers observe a deadline-carrying
// context).
func TestRequestDeadlinePlumbed(t *testing.T) {
	srv := newServer(testEngine(t))
	srv.enableLimits(0, 250*time.Millisecond)
	seen := make(chan bool, 1)
	srv.mux.HandleFunc("GET /deadline-probe", func(w http.ResponseWriter, r *http.Request) {
		_, ok := r.Context().Deadline()
		seen <- ok
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/deadline-probe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !<-seen {
		t.Fatal("handler context carries no deadline")
	}
}
