package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rings/internal/churn"
	"rings/internal/objects"
	"rings/internal/oracle"
	"rings/internal/shard"
	"rings/internal/telemetry"
	"rings/internal/version"
)

// maxBatchPairs bounds one /batch request so a single client cannot
// monopolize the engine (and the JSON decoder) with an arbitrarily large
// body.
const maxBatchPairs = 4096

// server wires an oracle.Engine — or, under -shards, a shard.Fleet —
// to the HTTP surface. All query endpoints are thin translations —
// parameter parsing in, JSON out — so the engine's own counters and
// latency reservoirs describe the served traffic faithfully.
type server struct {
	engine *oracle.Engine // nil in fleet mode
	fleet  *shard.Fleet   // nil in single-engine mode
	mux    *http.ServeMux
	start  time.Time
	// rebuildMu serializes /snapshot rebuilds; queries never take it.
	rebuildMu sync.Mutex
	// mutator, when non-nil, enables the churn admin endpoints. churnMu
	// serializes mutations (the Mutator is single-writer by contract);
	// queries never take it — they keep flowing against the engine's
	// current snapshot while a repair runs, exactly like rebuilds. In
	// fleet mode the fleet owns per-shard mutation locks instead.
	mutator  *churn.Mutator
	churnMu  sync.Mutex
	churnRng *rand.Rand
	// leaveSeed seeds per-request leave selection in fleet mode (each
	// request derives its own rand.Rand, so concurrent leaves on
	// different shards never share one unsynchronized stream).
	leaveSeed atomic.Int64
	// persist, when non-nil, receives the current snapshot after every
	// swap (and at boot) so a restart warm-starts from disk. Writes are
	// serialized and coalesced by the persister, never by the mutation
	// locks — see persist.go.
	persist *persister
	// fleetPersist holds one persister per shard (fleet mode): shard s
	// persists to shard.SnapshotPath(base, s), and a commit touching one
	// shard rewrites only that shard's file.
	fleetPersist []*persister
	// Telemetry surface (see telemetry.go): the sampled-query trace ring
	// behind /debug/trace and the online stretch auditor feeding
	// /metrics. Always initialized by the constructors (sampling
	// disabled); main re-enables with the flag-configured rates.
	traceRing       *telemetry.TraceRing
	traceSampler    *telemetry.Sampler
	traceSampleRate int
	auditor         *auditor
	// inflight, when non-nil, is the admission semaphore: a request that
	// cannot acquire a slot immediately is shed with 503 "overloaded"
	// rather than queued without bound (a downed shard backend must not
	// pile up goroutines). /healthz and /metrics bypass it — liveness
	// and scrapes stay observable under overload.
	inflight chan struct{}
	// reqTimeout, when > 0, bounds every handler via a per-request
	// context deadline.
	reqTimeout time.Duration
	// Object directory (single-engine mode; the fleet owns per-shard
	// directories). Mutations are serialized by the directory itself;
	// churn repairs run under churnMu like every other mutation. See
	// objects.go.
	objDir     *objects.Directory
	objMetrics *objects.Metrics
}

func newServer(engine *oracle.Engine) *server {
	s := &server{engine: engine, mux: http.NewServeMux(), start: time.Now()}
	s.enableTelemetry(0, 0)
	s.enableObjects(objects.Config{})
	s.routes()
	return s
}

// newFleetServer serves the same HTTP surface over a sharded fleet.
// seed pins server-side leave selection (each request derives a
// private stream from it), mirroring -seed in single-engine mode.
func newFleetServer(fleet *shard.Fleet, seed int64) *server {
	s := &server{fleet: fleet, mux: http.NewServeMux(), start: time.Now()}
	s.leaveSeed.Store(seed)
	s.enableTelemetry(0, 0)
	s.routes()
	return s
}

func (s *server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /nearest", s.handleNearest)
	s.mux.HandleFunc("GET /route", s.handleRoute)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /join", s.handleJoin)
	s.mux.HandleFunc("POST /leave", s.handleLeave)
	s.mux.HandleFunc("GET /churn/stats", s.handleChurnStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/trace", s.handleTrace)
	s.mux.HandleFunc("GET /replica", s.handleReplicaList)
	s.mux.HandleFunc("POST /replica", s.handleReplicaAdmin)
	s.mux.HandleFunc("POST /publish", s.handlePublish)
	s.mux.HandleFunc("POST /unpublish", s.handleUnpublish)
	s.mux.HandleFunc("GET /lookup", s.handleLookup)
	s.mux.HandleFunc("GET /objects/stats", s.handleObjectsStats)
}

// enableLimits installs the admission semaphore (maxInflight <= 0
// leaves admission unbounded) and the per-handler context deadline
// (timeout <= 0 disables).
func (s *server) enableLimits(maxInflight int, timeout time.Duration) {
	if maxInflight > 0 {
		s.inflight = make(chan struct{}, maxInflight)
	}
	s.reqTimeout = timeout
}

// enableChurn attaches a churn mutator (its current snapshot must be
// the engine's). seed drives server-side random leave selection.
func (s *server) enableChurn(m *churn.Mutator, seed int64) {
	s.mutator = m
	s.churnRng = rand.New(rand.NewSource(seed))
}

// enablePersist arranges for every swap to persist the snapshot.
func (s *server) enablePersist(path string) { s.persist = newPersister(path) }

// enableFleetPersist arranges per-shard persistence: shard s writes to
// shard.SnapshotPath(base, s) on every swap (and at boot), so a
// restarted fleet warm-starts shard by shard via shard.OpenFleet.
func (s *server) enableFleetPersist(base string) {
	s.fleetPersist = make([]*persister, s.fleet.K())
	for i := range s.fleetPersist {
		s.fleetPersist[i] = newPersister(shard.SnapshotPath(base, i))
	}
}

// persistCurrent persists the current snapshot — every shard's, in
// fleet mode (no-op when persistence is disabled). Callers must not
// hold churnMu or rebuildMu: the whole point of the persister is that
// mutation throughput is not gated on fsync latency.
func (s *server) persistCurrent() error {
	if s.fleet != nil {
		if s.fleetPersist == nil {
			return nil
		}
		shards := make([]int, s.fleet.K())
		for i := range shards {
			shards[i] = i
		}
		return s.persistShards(shards)
	}
	if s.persist == nil {
		return nil
	}
	return s.persist.persist(func() io.WriterTo { return s.engine.Snapshot() })
}

// persistShards persists the listed shards' current snapshots (fleet
// mode; no-op when persistence is disabled). Churn commits call this
// with only the touched shards.
func (s *server) persistShards(shards []int) error {
	if s.fleetPersist == nil {
		return nil
	}
	for _, i := range shards {
		i := i
		if err := s.fleetPersist[i].persist(func() io.WriterTo { return s.fleet.ShardSnapshot(i) }); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// hydrateFrom upgrades a flat-only warm start in the background: the
// snapshot file is fully restored (labels materialized, overlay and
// router rebuilt) and swapped in, bringing /nearest and /route online.
// The swap is skipped if a rebuild already replaced the fast snapshot;
// rebuildMu makes that check-and-swap atomic against /snapshot.
func (s *server) hydrateFrom(path string, fast *oracle.Snapshot) {
	go func() {
		f, err := os.Open(path)
		if err != nil {
			log.Printf("hydrate %s: %v (continuing to serve estimates from the mapped arenas)", path, err)
			return
		}
		full, err := oracle.ReadSnapshot(f)
		f.Close()
		if err != nil {
			log.Printf("hydrate %s: %v (continuing to serve estimates from the mapped arenas)", path, err)
			return
		}
		s.rebuildMu.Lock()
		defer s.rebuildMu.Unlock()
		if s.engine.Snapshot() != fast {
			return // a rebuild landed first; its snapshot is newer
		}
		old := s.engine.Swap(full)
		old.Close()                // in-flight readers hold pins; unmap happens at last unpin
		s.objDir.SetSnapshot(full) // directory becomes ready with the index
		log.Printf("hydrated %s: routing=%v overlay=%v", full.Name, full.Router != nil, full.Overlay != nil)
	}()
}

// gracefulServe runs srv until ctx is canceled, then drains in-flight
// requests via http.Server.Shutdown bounded by drainTimeout. It returns
// nil on a clean drain — including when the listener was closed by
// shutdown — and the serve error otherwise.
func gracefulServe(srv *http.Server, ctx context.Context, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.inflight != nil && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			writeJSON(w, http.StatusServiceUnavailable, errorBody{
				Error: "server at its in-flight request limit",
				Code:  codeOverloaded,
			})
			return
		}
	}
	if s.reqTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire, so the client sees a
		// truncated body; the log line is the only place the failure
		// (usually a mid-response disconnect) is visible server-side.
		log.Printf("ringsrv: encode %T response: %v", v, err)
	}
}

type errorBody struct {
	Error string `json:"error"`
	// Code is the machine-readable error class — what load generators
	// key churn-race tolerance on (matching human prose would break on
	// any rewording): "out_of_range" (node id raced a shrink swap),
	// "below_floor" (leave refused at MinNodes), "at_capacity" (join
	// refused, universe full), "not_implemented" (artifact disabled),
	// "cross_shard" (route endpoints in different shards), "internal"
	// (server-side failure, 500-class).
	Code string `json:"code,omitempty"`
}

// Error codes for errorBody.Code.
const (
	codeOutOfRange     = "out_of_range"
	codeBelowFloor     = "below_floor"
	codeAtCapacity     = "at_capacity"
	codeNotImplemented = "not_implemented"
	codeCrossShard     = "cross_shard"
	codeInternal       = "internal"
	// codeUnavailable marks a 503 where the serving layer is degraded
	// (a shard's replicas are all down, or an operation kept racing
	// epoch changes): retryable, never a wrong answer.
	codeUnavailable = "unavailable"
	// codeOverloaded marks a 503 shed by the admission semaphore.
	codeOverloaded = "overloaded"
	// codeNotFound marks a 404: the named object has no published
	// replica anywhere (a name problem, not a node-id problem).
	codeNotFound = "not_found"
	// codeNoReplica marks an unpublish naming a node that holds no
	// replica of an existing object — under churn, usually a race with a
	// repair that moved the replica.
	codeNoReplica = "no_replica"
)

// writeError maps engine errors to HTTP statuses: disabled artifacts
// and cross-shard routes are 501 (the server genuinely cannot answer),
// internal engine failures (a churn commit that passed validation but
// failed to build) are 500, everything else surfaced by a query is a
// client-input problem (400). Known error classes carry a
// machine-readable code.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	body := errorBody{Error: err.Error()}
	switch {
	case errors.Is(err, oracle.ErrNoRouter) || errors.Is(err, oracle.ErrNoOverlay):
		status = http.StatusNotImplemented
		body.Code = codeNotImplemented
	case errors.Is(err, shard.ErrCrossShard):
		status = http.StatusNotImplemented
		body.Code = codeCrossShard
	case errors.Is(err, shard.ErrShardDown) || errors.Is(err, shard.ErrEpochFenced) || shard.IsUnavailable(err):
		// Degraded serving layer: the query was refused, not answered
		// wrong. 503 tells clients (and ringload's retry loop) to back
		// off and retry.
		status = http.StatusServiceUnavailable
		body.Code = codeUnavailable
	case errors.Is(err, churn.ErrCommit):
		status = http.StatusInternalServerError
		body.Code = codeInternal
	case errors.Is(err, objects.ErrUnknownObject):
		status = http.StatusNotFound
		body.Code = codeNotFound
	case errors.Is(err, objects.ErrNotReady):
		// Flat-only warm start still hydrating: retryable, not wrong.
		status = http.StatusServiceUnavailable
		body.Code = codeUnavailable
	case errors.Is(err, objects.ErrNoReplica):
		body.Code = codeNoReplica
	case errors.Is(err, oracle.ErrNodeRange):
		body.Code = codeOutOfRange
	case errors.Is(err, churn.ErrBelowFloor):
		body.Code = codeBelowFloor
	}
	writeJSON(w, status, body)
}

// writeInternalError reports a 500 with the internal code (build or
// persistence failures — never client input).
func writeInternalError(w http.ResponseWriter, context string, err error) {
	writeJSON(w, http.StatusInternalServerError, errorBody{
		Error: fmt.Sprintf("%s: %v", context, err),
		Code:  codeInternal,
	})
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// healthBody tells load generators everything they need to shape
// traffic: the node-id range and which endpoints this snapshot serves.
// Shards and Universe are only set in fleet mode: ids are then global
// — [0, Universe) with Owner = id mod Shards — and under churn only a
// subset of them is active at a time.
type healthBody struct {
	OK       bool   `json:"ok"`
	Version  int64  `json:"version"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Routing  bool   `json:"routing"`
	Overlay  bool   `json:"overlay"`
	Shards   int    `json:"shards,omitempty"`
	Universe int    `json:"universe,omitempty"`
	// Replica roster summary (fleet mode with -replicas): Degraded is
	// true while any replica is killed or breaker-open — the fleet still
	// answers (failover), but with reduced redundancy.
	Replicas     int  `json:"replicas,omitempty"`
	ReplicasDown int  `json:"replicas_down,omitempty"`
	Degraded     bool `json:"degraded,omitempty"`
	// Objects summarizes the object-location layer (both modes).
	Objects   *objectsHealth `json:"objects,omitempty"`
	UptimeSec float64        `json:"uptime_sec"`
	// BuildVersion identifies the serving binary (ldflags stamp or VCS
	// revision), so scraped fleets correlate behavior with code.
	BuildVersion string `json:"build_version"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		s.handleFleetHealthz(w)
		return
	}
	snap := s.engine.Snapshot()
	writeJSON(w, http.StatusOK, healthBody{
		OK:           true,
		Version:      snap.Version,
		N:            snap.N(),
		Workload:     snap.Name,
		Scheme:       snap.Config.Scheme,
		Routing:      snap.Router != nil,
		Overlay:      snap.Overlay != nil,
		Objects:      s.objectsHealthBody(),
		UptimeSec:    time.Since(s.start).Seconds(),
		BuildVersion: version.String(),
	})
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	u, err := intParam(r, "u")
	if err != nil {
		writeError(w, err)
		return
	}
	v, err := intParam(r, "v")
	if err != nil {
		writeError(w, err)
		return
	}
	start := time.Now()
	if s.fleet != nil {
		res, err := s.fleet.Estimate(u, v)
		s.observeFleetEstimate("estimate", res, err, start)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	res, err := s.engine.Estimate(u, v)
	s.observeEngineEstimate("estimate", res, err, start)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type batchRequest struct {
	Pairs []oracle.Pair `json:"pairs"`
}

type batchResponse struct {
	Results []oracle.EstimateResult `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("invalid batch body: %v", err))
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, errors.New("batch needs at least one pair"))
		return
	}
	if len(req.Pairs) > maxBatchPairs {
		writeError(w, fmt.Errorf("batch of %d pairs exceeds the %d-pair cap", len(req.Pairs), maxBatchPairs))
		return
	}
	if s.fleet != nil {
		results, err := s.fleet.EstimateBatch(req.Pairs)
		if err != nil {
			writeError(w, err)
			return
		}
		for i := range results {
			s.auditor.offer(auditRecord{
				u: results[i].U, v: results[i].V,
				lower: results[i].Lower, upper: results[i].Upper,
				version: results[i].Version,
				cross:   results[i].Cross,
			})
		}
		writeJSON(w, http.StatusOK, fleetBatchResponse{Results: results})
		return
	}
	results, err := s.engine.EstimateBatch(req.Pairs)
	if err != nil {
		writeError(w, err)
		return
	}
	for i := range results {
		s.auditor.offer(auditRecord{
			u: results[i].U, v: results[i].V,
			lower: results[i].Lower, upper: results[i].Upper,
			version: results[i].Version,
		})
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

func (s *server) handleNearest(w http.ResponseWriter, r *http.Request) {
	target, err := intParam(r, "target")
	if err != nil {
		writeError(w, err)
		return
	}
	if s.fleet != nil {
		res, err := s.fleet.Nearest(target)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	res, err := s.engine.Nearest(target)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src")
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := intParam(r, "dst")
	if err != nil {
		writeError(w, err)
		return
	}
	if s.fleet != nil {
		res, err := s.fleet.Route(src, dst)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
		return
	}
	res, err := s.engine.Route(src, dst)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type snapshotRequest struct {
	// Seed reseeds the workload for the rebuild; omitted or zero means
	// "current seed + 1" (a fresh instance of the same family).
	Seed int64 `json:"seed"`
}

type snapshotResponse struct {
	Version  int64  `json:"version"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	// BuildSec predates the per-phase breakdown and is kept for
	// pre-PR-3 clients; it always equals Build.TotalSec.
	BuildSec float64           `json:"build_sec"`
	Build    oracle.BuildStats `json:"build"`
}

// handleSnapshot rebuilds the snapshot on a fresh seed and swaps it in.
// The build runs outside any engine lock — queries keep being answered
// from the old snapshot until the swap — but rebuilds themselves are
// serialized: a second request while one is building gets 409.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		// Per-shard rebuilds arrive with rebalancing; a fleet-wide
		// rebuild is a restart.
		writeJSON(w, http.StatusNotImplemented, errorBody{
			Error: "snapshot rebuilds are not supported under -shards (restart the fleet)",
			Code:  codeNotImplemented,
		})
		return
	}
	if s.mutator != nil {
		// Membership lives in the churn engine; a spec rebuild would
		// desynchronize the served snapshot from it.
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "snapshot rebuilds are disabled under -churn (membership is owned by the churn engine; use /join and /leave)",
		})
		return
	}
	var req snapshotRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid snapshot body: %v", err))
			return
		}
	}
	if !s.rebuildMu.TryLock() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "a snapshot rebuild is already in progress"})
		return
	}
	defer s.rebuildMu.Unlock()
	cfg := s.engine.Snapshot().Config
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	} else {
		cfg.Seed++
	}
	snap, err := s.engine.Rebuild(cfg)
	if err != nil {
		writeInternalError(w, "rebuild", err)
		return
	}
	// Re-anchor published objects on the rebuilt instance (same n, fresh
	// metric): replica ids carry over, overlays are rebuilt.
	s.objDir.SetSnapshot(snap)
	if err := s.persistCurrent(); err != nil {
		writeInternalError(w, "persist", err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		Version:  snap.Version,
		N:        snap.N(),
		Workload: snap.Name,
		BuildSec: snap.BuildElapsed.Seconds(),
		Build:    snap.Build,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		s.handleFleetStats(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// ---- churn admin endpoints -------------------------------------------

var errNoChurn = errors.New("churn disabled: start ringsrv with -churn")

type joinRequest struct {
	// Base picks a specific dormant base node; omitted or negative
	// lets the server pick the smallest dormant ids (Count of them).
	Base *int `json:"base,omitempty"`
	// Count joins that many dormant nodes in one commit (default 1;
	// ignored when Base picks a specific node).
	Count int `json:"count,omitempty"`
}

type leaveRequest struct {
	// Base picks a specific active base node; omitted or negative lets
	// the server pick random active ones (Count of them).
	Base *int `json:"base,omitempty"`
	// Count retires that many nodes in one commit (default 1; ignored
	// when Base picks a specific node).
	Count int `json:"count,omitempty"`
}

// churnResponse reports one committed mutation batch.
type churnResponse struct {
	Version int64         `json:"version"`
	N       int           `json:"n"`
	Bases   []int         `json:"bases"`
	Repair  churn.OpStats `json:"repair"`
}

// commitChurn runs op selection (pick, under the churn lock so two
// auto-joins cannot claim the same dormant base) and the mutation
// commit + swap atomically, then returns the response to send. The
// churn lock is released before the caller persists: fsync latency
// never sits inside the mutation critical section.
func (s *server) commitChurn(pick func() ([]churn.Op, *errorBody)) (churnResponse, *errorBody, error) {
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	ops, eb := pick()
	if eb != nil {
		return churnResponse{}, eb, nil
	}
	snap, err := s.mutator.Apply(ops...)
	if err != nil {
		return churnResponse{}, nil, err
	}
	s.engine.Swap(snap)
	// Re-anchor the object directory on the new membership: replicas on
	// departed nodes are re-published to the next-nearest survivor.
	// Inside churnMu, so object repairs are serialized with mutations.
	s.objDir.SetSnapshot(snap)
	bases := make([]int, len(ops))
	for i, op := range ops {
		bases[i] = op.Base
	}
	return churnResponse{
		Version: snap.Version,
		N:       snap.N(),
		Bases:   bases,
		Repair:  s.mutator.Stats().Last,
	}, nil, nil
}

// applyChurn commits the picked ops, persists the committed snapshot
// outside the churn lock (latest-wins coalescing: a mutation burst
// queues a handful of writes, not one per commit), and reports.
func (s *server) applyChurn(w http.ResponseWriter, pick func() ([]churn.Op, *errorBody)) {
	resp, eb, err := s.commitChurn(pick)
	if err != nil {
		writeError(w, err)
		return
	}
	if eb != nil {
		writeJSON(w, http.StatusBadRequest, *eb)
		return
	}
	if err := s.persistCurrent(); err != nil {
		writeInternalError(w, "persist", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		s.handleFleetJoin(w, r)
		return
	}
	if s.mutator == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: errNoChurn.Error()})
		return
	}
	var req joinRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid join body: %v", err))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	s.applyChurn(w, func() ([]churn.Op, *errorBody) {
		if req.Base != nil && *req.Base >= 0 {
			return []churn.Op{{Kind: churn.Join, Base: *req.Base}}, nil
		}
		var ops []churn.Op
		for _, b := range s.mutator.DormantBases(count) {
			ops = append(ops, churn.Op{Kind: churn.Join, Base: b})
		}
		if len(ops) == 0 {
			return nil, &errorBody{
				Error: "universe at capacity: nothing to join",
				Code:  codeAtCapacity,
			}
		}
		return ops, nil
	})
}

func (s *server) handleLeave(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		s.handleFleetLeave(w, r)
		return
	}
	if s.mutator == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: errNoChurn.Error()})
		return
	}
	var req leaveRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid leave body: %v", err))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	s.applyChurn(w, func() ([]churn.Op, *errorBody) {
		if req.Base != nil && *req.Base >= 0 {
			return []churn.Op{{Kind: churn.Leave, Base: *req.Base}}, nil
		}
		floor := s.mutator.Config().MinNodes
		seen := map[int]bool{}
		var ops []churn.Op
		for i := 0; i < count && s.mutator.N()-len(ops) > floor; i++ {
			u := s.churnRng.Intn(s.mutator.N())
			b := s.mutator.ActiveBase(u)
			for tries := 0; seen[b] && tries < 8; tries++ {
				b = s.mutator.ActiveBase(s.churnRng.Intn(s.mutator.N()))
			}
			if seen[b] {
				break
			}
			seen[b] = true
			ops = append(ops, churn.Op{Kind: churn.Leave, Base: b})
		}
		if len(ops) == 0 {
			return nil, &errorBody{
				Error: fmt.Sprintf("at the MinNodes=%d floor: nothing to retire", floor),
				Code:  codeBelowFloor,
			}
		}
		return ops, nil
	})
}

// churnStatsBody frames the mutator's report for /churn/stats.
type churnStatsBody struct {
	Enabled bool         `json:"enabled"`
	Stats   *churn.Stats `json:"stats,omitempty"`
	// Fleet carries the per-shard reports in fleet mode (Stats is then
	// unset; each shard owns its own mutator).
	Fleet *shard.FleetStats `json:"fleet,omitempty"`
}

func (s *server) handleChurnStats(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		if !s.fleet.ChurnEnabled() {
			writeJSON(w, http.StatusOK, churnStatsBody{Enabled: false})
			return
		}
		st := s.fleet.Stats()
		writeJSON(w, http.StatusOK, churnStatsBody{Enabled: true, Fleet: &st})
		return
	}
	if s.mutator == nil {
		writeJSON(w, http.StatusOK, churnStatsBody{Enabled: false})
		return
	}
	s.churnMu.Lock()
	st := s.mutator.Stats()
	s.churnMu.Unlock()
	writeJSON(w, http.StatusOK, churnStatsBody{Enabled: true, Stats: &st})
}
