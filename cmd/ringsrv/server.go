package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"rings/internal/churn"
	"rings/internal/oracle"
)

// maxBatchPairs bounds one /batch request so a single client cannot
// monopolize the engine (and the JSON decoder) with an arbitrarily large
// body.
const maxBatchPairs = 4096

// server wires an oracle.Engine to the HTTP surface. All query
// endpoints are thin translations — parameter parsing in, JSON out —
// so the engine's own counters and latency reservoirs describe the
// served traffic faithfully.
type server struct {
	engine *oracle.Engine
	mux    *http.ServeMux
	start  time.Time
	// rebuildMu serializes /snapshot rebuilds; queries never take it.
	rebuildMu sync.Mutex
	// mutator, when non-nil, enables the churn admin endpoints. churnMu
	// serializes mutations (the Mutator is single-writer by contract);
	// queries never take it — they keep flowing against the engine's
	// current snapshot while a repair runs, exactly like rebuilds.
	mutator  *churn.Mutator
	churnMu  sync.Mutex
	churnRng *rand.Rand
	// persistPath, when set, receives the current snapshot after every
	// swap (and at boot) so a restart warm-starts from disk.
	persistPath string
}

func newServer(engine *oracle.Engine) *server {
	s := &server{engine: engine, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /nearest", s.handleNearest)
	s.mux.HandleFunc("GET /route", s.handleRoute)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /join", s.handleJoin)
	s.mux.HandleFunc("POST /leave", s.handleLeave)
	s.mux.HandleFunc("GET /churn/stats", s.handleChurnStats)
	return s
}

// enableChurn attaches a churn mutator (its current snapshot must be
// the engine's). seed drives server-side random leave selection.
func (s *server) enableChurn(m *churn.Mutator, seed int64) {
	s.mutator = m
	s.churnRng = rand.New(rand.NewSource(seed))
}

// enablePersist arranges for every swap to persist the snapshot.
func (s *server) enablePersist(path string) { s.persistPath = path }

// persist writes the current snapshot to the persist path (atomic
// rename), when enabled.
func (s *server) persist() error {
	if s.persistPath == "" {
		return nil
	}
	snap := s.engine.Snapshot()
	tmp := s.persistPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// WriteTo issues two small writes per label; buffering keeps a
	// per-commit persist at a handful of syscalls instead of thousands.
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := snap.WriteTo(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.persistPath)
}

// gracefulServe runs srv until ctx is canceled, then drains in-flight
// requests via http.Server.Shutdown bounded by drainTimeout. It returns
// nil on a clean drain — including when the listener was closed by
// shutdown — and the serve error otherwise.
func gracefulServe(srv *http.Server, ctx context.Context, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// Code is the machine-readable error class — what load generators
	// key churn-race tolerance on (matching human prose would break on
	// any rewording): "out_of_range" (node id raced a shrink swap),
	// "below_floor" (leave refused at MinNodes), "at_capacity" (join
	// refused, universe full), "not_implemented" (artifact disabled).
	Code string `json:"code,omitempty"`
}

// Error codes for errorBody.Code.
const (
	codeOutOfRange     = "out_of_range"
	codeBelowFloor     = "below_floor"
	codeAtCapacity     = "at_capacity"
	codeNotImplemented = "not_implemented"
)

// writeError maps engine errors to HTTP statuses: disabled artifacts are
// 501 (the server genuinely cannot answer), everything else surfaced by
// a query is a client-input problem (400). Known error classes carry a
// machine-readable code.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	body := errorBody{Error: err.Error()}
	switch {
	case errors.Is(err, oracle.ErrNoRouter) || errors.Is(err, oracle.ErrNoOverlay):
		status = http.StatusNotImplemented
		body.Code = codeNotImplemented
	case errors.Is(err, oracle.ErrNodeRange):
		body.Code = codeOutOfRange
	case errors.Is(err, churn.ErrBelowFloor):
		body.Code = codeBelowFloor
	}
	writeJSON(w, status, body)
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// healthBody tells load generators everything they need to shape
// traffic: the node-id range and which endpoints this snapshot serves.
type healthBody struct {
	OK        bool    `json:"ok"`
	Version   int64   `json:"version"`
	N         int     `json:"n"`
	Workload  string  `json:"workload"`
	Scheme    string  `json:"scheme"`
	Routing   bool    `json:"routing"`
	Overlay   bool    `json:"overlay"`
	UptimeSec float64 `json:"uptime_sec"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Snapshot()
	writeJSON(w, http.StatusOK, healthBody{
		OK:        true,
		Version:   snap.Version,
		N:         snap.N(),
		Workload:  snap.Name,
		Scheme:    snap.Config.Scheme,
		Routing:   snap.Router != nil,
		Overlay:   snap.Overlay != nil,
		UptimeSec: time.Since(s.start).Seconds(),
	})
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	u, err := intParam(r, "u")
	if err != nil {
		writeError(w, err)
		return
	}
	v, err := intParam(r, "v")
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.engine.Estimate(u, v)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type batchRequest struct {
	Pairs []oracle.Pair `json:"pairs"`
}

type batchResponse struct {
	Results []oracle.EstimateResult `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("invalid batch body: %v", err))
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, errors.New("batch needs at least one pair"))
		return
	}
	if len(req.Pairs) > maxBatchPairs {
		writeError(w, fmt.Errorf("batch of %d pairs exceeds the %d-pair cap", len(req.Pairs), maxBatchPairs))
		return
	}
	results, err := s.engine.EstimateBatch(req.Pairs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

func (s *server) handleNearest(w http.ResponseWriter, r *http.Request) {
	target, err := intParam(r, "target")
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.engine.Nearest(target)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src")
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := intParam(r, "dst")
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.engine.Route(src, dst)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type snapshotRequest struct {
	// Seed reseeds the workload for the rebuild; omitted or zero means
	// "current seed + 1" (a fresh instance of the same family).
	Seed int64 `json:"seed"`
}

type snapshotResponse struct {
	Version  int64  `json:"version"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	// BuildSec predates the per-phase breakdown and is kept for
	// pre-PR-3 clients; it always equals Build.TotalSec.
	BuildSec float64           `json:"build_sec"`
	Build    oracle.BuildStats `json:"build"`
}

// handleSnapshot rebuilds the snapshot on a fresh seed and swaps it in.
// The build runs outside any engine lock — queries keep being answered
// from the old snapshot until the swap — but rebuilds themselves are
// serialized: a second request while one is building gets 409.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.mutator != nil {
		// Membership lives in the churn engine; a spec rebuild would
		// desynchronize the served snapshot from it.
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "snapshot rebuilds are disabled under -churn (membership is owned by the churn engine; use /join and /leave)",
		})
		return
	}
	var req snapshotRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid snapshot body: %v", err))
			return
		}
	}
	if !s.rebuildMu.TryLock() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "a snapshot rebuild is already in progress"})
		return
	}
	defer s.rebuildMu.Unlock()
	cfg := s.engine.Snapshot().Config
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	} else {
		cfg.Seed++
	}
	snap, err := s.engine.Rebuild(cfg)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if err := s.persist(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("persist: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		Version:  snap.Version,
		N:        snap.N(),
		Workload: snap.Name,
		BuildSec: snap.BuildElapsed.Seconds(),
		Build:    snap.Build,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

// ---- churn admin endpoints -------------------------------------------

var errNoChurn = errors.New("churn disabled: start ringsrv with -churn")

type joinRequest struct {
	// Base picks a specific dormant base node; omitted or negative
	// lets the server pick the smallest dormant ids (Count of them).
	Base *int `json:"base,omitempty"`
	// Count joins that many dormant nodes in one commit (default 1;
	// ignored when Base picks a specific node).
	Count int `json:"count,omitempty"`
}

type leaveRequest struct {
	// Base picks a specific active base node; omitted or negative lets
	// the server pick random active ones (Count of them).
	Base *int `json:"base,omitempty"`
	// Count retires that many nodes in one commit (default 1; ignored
	// when Base picks a specific node).
	Count int `json:"count,omitempty"`
}

// churnResponse reports one committed mutation batch.
type churnResponse struct {
	Version int64         `json:"version"`
	N       int           `json:"n"`
	Bases   []int         `json:"bases"`
	Repair  churn.OpStats `json:"repair"`
}

// applyChurn runs one mutation batch under the churn lock, swaps the
// delta snapshot in, and persists when enabled.
func (s *server) applyChurn(w http.ResponseWriter, ops []churn.Op) {
	snap, err := s.mutator.Apply(ops...)
	if err != nil {
		writeError(w, err)
		return
	}
	s.engine.Swap(snap)
	if err := s.persist(); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("persist: %v", err)})
		return
	}
	bases := make([]int, len(ops))
	for i, op := range ops {
		bases[i] = op.Base
	}
	writeJSON(w, http.StatusOK, churnResponse{
		Version: snap.Version,
		N:       snap.N(),
		Bases:   bases,
		Repair:  s.mutator.Stats().Last,
	})
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if s.mutator == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: errNoChurn.Error()})
		return
	}
	var req joinRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid join body: %v", err))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	var ops []churn.Op
	if req.Base != nil && *req.Base >= 0 {
		ops = []churn.Op{{Kind: churn.Join, Base: *req.Base}}
	} else {
		for _, b := range s.mutator.DormantBases(count) {
			ops = append(ops, churn.Op{Kind: churn.Join, Base: b})
		}
		if len(ops) == 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: "universe at capacity: nothing to join",
				Code:  codeAtCapacity,
			})
			return
		}
	}
	s.applyChurn(w, ops)
}

func (s *server) handleLeave(w http.ResponseWriter, r *http.Request) {
	if s.mutator == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: errNoChurn.Error()})
		return
	}
	var req leaveRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid leave body: %v", err))
			return
		}
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	var ops []churn.Op
	if req.Base != nil && *req.Base >= 0 {
		ops = []churn.Op{{Kind: churn.Leave, Base: *req.Base}}
	} else {
		floor := s.mutator.Config().MinNodes
		seen := map[int]bool{}
		for i := 0; i < count && s.mutator.N()-len(ops) > floor; i++ {
			u := s.churnRng.Intn(s.mutator.N())
			b := s.mutator.ActiveBase(u)
			for tries := 0; seen[b] && tries < 8; tries++ {
				b = s.mutator.ActiveBase(s.churnRng.Intn(s.mutator.N()))
			}
			if seen[b] {
				break
			}
			seen[b] = true
			ops = append(ops, churn.Op{Kind: churn.Leave, Base: b})
		}
		if len(ops) == 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("at the MinNodes=%d floor: nothing to retire", floor),
				Code:  codeBelowFloor,
			})
			return
		}
	}
	s.applyChurn(w, ops)
}

// churnStatsBody frames the mutator's report for /churn/stats.
type churnStatsBody struct {
	Enabled bool         `json:"enabled"`
	Stats   *churn.Stats `json:"stats,omitempty"`
}

func (s *server) handleChurnStats(w http.ResponseWriter, r *http.Request) {
	if s.mutator == nil {
		writeJSON(w, http.StatusOK, churnStatsBody{Enabled: false})
		return
	}
	s.churnMu.Lock()
	st := s.mutator.Stats()
	s.churnMu.Unlock()
	writeJSON(w, http.StatusOK, churnStatsBody{Enabled: true, Stats: &st})
}
