package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rings/internal/oracle"
)

// maxBatchPairs bounds one /batch request so a single client cannot
// monopolize the engine (and the JSON decoder) with an arbitrarily large
// body.
const maxBatchPairs = 4096

// server wires an oracle.Engine to the HTTP surface. All query
// endpoints are thin translations — parameter parsing in, JSON out —
// so the engine's own counters and latency reservoirs describe the
// served traffic faithfully.
type server struct {
	engine *oracle.Engine
	mux    *http.ServeMux
	start  time.Time
	// rebuildMu serializes /snapshot rebuilds; queries never take it.
	rebuildMu sync.Mutex
}

func newServer(engine *oracle.Engine) *server {
	s := &server{engine: engine, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /nearest", s.handleNearest)
	s.mux.HandleFunc("GET /route", s.handleRoute)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeError maps engine errors to HTTP statuses: disabled artifacts are
// 501 (the server genuinely cannot answer), everything else surfaced by
// a query is a client-input problem (400).
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, oracle.ErrNoRouter) || errors.Is(err, oracle.ErrNoOverlay) {
		status = http.StatusNotImplemented
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// healthBody tells load generators everything they need to shape
// traffic: the node-id range and which endpoints this snapshot serves.
type healthBody struct {
	OK        bool    `json:"ok"`
	Version   int64   `json:"version"`
	N         int     `json:"n"`
	Workload  string  `json:"workload"`
	Scheme    string  `json:"scheme"`
	Routing   bool    `json:"routing"`
	Overlay   bool    `json:"overlay"`
	UptimeSec float64 `json:"uptime_sec"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.engine.Snapshot()
	writeJSON(w, http.StatusOK, healthBody{
		OK:        true,
		Version:   snap.Version,
		N:         snap.N(),
		Workload:  snap.Name,
		Scheme:    snap.Config.Scheme,
		Routing:   snap.Router != nil,
		Overlay:   snap.Overlay != nil,
		UptimeSec: time.Since(s.start).Seconds(),
	})
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	u, err := intParam(r, "u")
	if err != nil {
		writeError(w, err)
		return
	}
	v, err := intParam(r, "v")
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.engine.Estimate(u, v)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type batchRequest struct {
	Pairs []oracle.Pair `json:"pairs"`
}

type batchResponse struct {
	Results []oracle.EstimateResult `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<22)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("invalid batch body: %v", err))
		return
	}
	if len(req.Pairs) == 0 {
		writeError(w, errors.New("batch needs at least one pair"))
		return
	}
	if len(req.Pairs) > maxBatchPairs {
		writeError(w, fmt.Errorf("batch of %d pairs exceeds the %d-pair cap", len(req.Pairs), maxBatchPairs))
		return
	}
	results, err := s.engine.EstimateBatch(req.Pairs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: results})
}

func (s *server) handleNearest(w http.ResponseWriter, r *http.Request) {
	target, err := intParam(r, "target")
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.engine.Nearest(target)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	src, err := intParam(r, "src")
	if err != nil {
		writeError(w, err)
		return
	}
	dst, err := intParam(r, "dst")
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.engine.Route(src, dst)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type snapshotRequest struct {
	// Seed reseeds the workload for the rebuild; omitted or zero means
	// "current seed + 1" (a fresh instance of the same family).
	Seed int64 `json:"seed"`
}

type snapshotResponse struct {
	Version  int64  `json:"version"`
	N        int    `json:"n"`
	Workload string `json:"workload"`
	// BuildSec predates the per-phase breakdown and is kept for
	// pre-PR-3 clients; it always equals Build.TotalSec.
	BuildSec float64           `json:"build_sec"`
	Build    oracle.BuildStats `json:"build"`
}

// handleSnapshot rebuilds the snapshot on a fresh seed and swaps it in.
// The build runs outside any engine lock — queries keep being answered
// from the old snapshot until the swap — but rebuilds themselves are
// serialized: a second request while one is building gets 409.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, fmt.Errorf("invalid snapshot body: %v", err))
			return
		}
	}
	if !s.rebuildMu.TryLock() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "a snapshot rebuild is already in progress"})
		return
	}
	defer s.rebuildMu.Unlock()
	cfg := s.engine.Snapshot().Config
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	} else {
		cfg.Seed++
	}
	snap, err := s.engine.Rebuild(cfg)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{
		Version:  snap.Version,
		N:        snap.N(),
		Workload: snap.Name,
		BuildSec: snap.BuildElapsed.Seconds(),
		Build:    snap.Build,
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}
