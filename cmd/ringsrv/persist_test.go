package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rings/internal/oracle"
	"rings/internal/shard"
)

func persistTestServer(t *testing.T, path string) *server {
	t.Helper()
	snap, err := oracle.BuildSnapshot(oracle.Config{
		Workload:    "cube",
		N:           24,
		Seed:        1,
		SkipRouting: true,
		SkipOverlay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(oracle.NewEngine(snap, oracle.EngineOptions{}))
	s.enablePersist(path)
	return s
}

// TestPersistConcurrentWritersNeverCorrupt is the regression test for
// the persistence race: with the old fixed persistPath+".tmp" scheme,
// two writers arriving from different lock domains could interleave on
// one temp file — one truncating it (os.Create) while the other
// renamed it — leaving a truncated snapshot visible at the persist
// path. Against that implementation this test fails (a concurrent
// reader observes an unparseable file); with per-writer unique temp
// files and the serialized persister it always passes.
func TestPersistConcurrentWritersNeverCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	s := persistTestServer(t, path)
	if err := s.persistCurrent(); err != nil {
		t.Fatal(err)
	}

	const writers = 6
	stop := make(chan struct{})
	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func() {
			defer writerWg.Done()
			for i := 0; i < 60; i++ {
				if err := s.persistCurrent(); err != nil {
					t.Errorf("persist: %v", err)
					return
				}
			}
		}()
	}
	// A reader racing the writers must only ever see complete files:
	// the rename is atomic and only fsynced, fully written temps are
	// ever renamed over the path.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			f, err := os.Open(path)
			if err != nil {
				t.Errorf("open persisted snapshot: %v", err)
				return
			}
			_, rerr := oracle.ReadSnapshot(f)
			f.Close()
			if rerr != nil {
				t.Errorf("persisted snapshot unparseable mid-run: %v", rerr)
				return
			}
		}
	}()
	writerWg.Wait()
	close(stop)
	<-readerDone

	// The final file must round-trip byte-identically.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := oracle.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("final persisted snapshot: %v", err)
	}
	var rewritten bytes.Buffer
	if _, err := snap.WriteTo(&rewritten); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, rewritten.Bytes()) {
		t.Fatalf("write -> read -> write changed the snapshot bytes (%d vs %d)", len(data), rewritten.Len())
	}
	// No temp files may linger after clean completion.
	matches, err := filepath.Glob(path + ".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

// failingPayload writes a prefix then fails, simulating a snapshot
// write interrupted partway through.
type failingPayload struct{}

func (failingPayload) WriteTo(w io.Writer) (int64, error) {
	n, _ := w.Write([]byte("partial snapshot bytes"))
	return int64(n), errors.New("injected mid-write failure")
}

// TestInterruptedWriteNeverVisible: a write that fails partway must
// leave the previous file untouched and remove its temp file — the
// visible path never holds a partial write.
func TestInterruptedWriteNeverVisible(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	good := []byte("good complete snapshot")
	if err := writeFileAtomic(path, bytes.NewBuffer(good)); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(path, failingPayload{}); err == nil {
		t.Fatal("interrupted write reported success")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, good) {
		t.Fatalf("interrupted write disturbed the visible file: %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Fatalf("stray file after interrupted write: %s", e.Name())
		}
	}
}

// TestFleetPersistAndWarmBoot: the server's per-shard persisters write
// one file per shard, and a fleet reopened from them answers like the
// one that wrote them — the -snapshot-file + -shards combination end
// to end.
func TestFleetPersistAndWarmBoot(t *testing.T) {
	cfg := shard.Config{
		Oracle: oracle.Config{Workload: "cube", N: 24, Seed: 2, SkipRouting: true, SkipOverlay: true},
		Shards: 2,
	}
	fleet, err := shard.NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "fleet.bin")
	s := newFleetServer(fleet, 1)
	s.enableFleetPersist(base)
	if err := s.persistCurrent(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Shards; i++ {
		if _, err := os.Stat(shard.SnapshotPath(base, i)); err != nil {
			t.Fatalf("shard %d file: %v", i, err)
		}
	}
	reopened, err := shard.OpenFleet(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < fleet.Universe(); u++ {
		for v := 0; v < fleet.Universe(); v += 5 {
			a, err1 := fleet.Estimate(u, v)
			b, err2 := reopened.Estimate(u, v)
			if err1 != nil || err2 != nil || a.Lower != b.Lower || a.Upper != b.Upper || a.Cross != b.Cross {
				t.Fatalf("estimate(%d,%d): %+v/%v vs %+v/%v", u, v, a, err1, b, err2)
			}
		}
	}
}

// TestHydrateFromUpgradesFlatOnlyBoot: a flat-only warm start serves
// estimates immediately, and the background hydration swaps in the full
// snapshot, bringing nearest/route online with byte-identical answers.
func TestHydrateFromUpgradesFlatOnlyBoot(t *testing.T) {
	full, err := oracle.BuildSnapshot(oracle.Config{Workload: "cube", N: 32, Seed: 3, MemberStride: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fast, err := oracle.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Labels != nil || fast.Overlay != nil {
		t.Fatal("fast open is not flat-only")
	}
	s := newServer(oracle.NewEngine(fast, oracle.EngineOptions{}))
	if _, err := s.engine.Estimate(1, 2); err != nil {
		t.Fatalf("flat-only estimate: %v", err)
	}
	if _, err := s.engine.Nearest(0); !errors.Is(err, oracle.ErrNoOverlay) {
		t.Fatalf("nearest before hydration: %v", err)
	}

	s.hydrateFrom(path, fast)
	deadline := time.Now().Add(10 * time.Second)
	for s.engine.Snapshot() == fast {
		if time.Now().After(deadline) {
			t.Fatal("hydration never swapped the full snapshot in")
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := s.engine.Nearest(0)
	if err != nil {
		t.Fatalf("nearest after hydration: %v", err)
	}
	want, err := full.Nearest(0)
	if err != nil || got.Member != want.Member || got.Dist != want.Dist {
		t.Fatalf("hydrated nearest %+v, want %+v (%v)", got, want, err)
	}
	a, _ := full.Estimate(3, 4)
	b, err := s.engine.Estimate(3, 4)
	if err != nil || a.Lower != b.Lower || a.Upper != b.Upper {
		t.Fatalf("hydrated estimate diverged: %+v vs %+v (%v)", a, b, err)
	}
}

// TestWarmStartRejectsTruncatedSnapshot: a file cut short (the crash
// the old non-synced rename could produce) must be rejected with a
// clear error instead of warm-starting a half-decoded snapshot.
func TestWarmStartRejectsTruncatedSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	s := persistTestServer(t, path)
	if err := s.persistCurrent(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int64{2, 4, 16} {
		if err := os.Truncate(path, info.Size()/frac); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := oracle.ReadSnapshot(f)
		f.Close()
		if rerr == nil {
			t.Fatalf("truncated snapshot (1/%d) decoded without error", frac)
		}
		if !strings.Contains(rerr.Error(), "oracle:") {
			t.Fatalf("truncation error lacks context: %v", rerr)
		}
	}
}
