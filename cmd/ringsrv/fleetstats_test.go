package main

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"rings/internal/oracle"
	"rings/internal/shard"
)

// TestFleetStatsAggregationConcurrent hammers a fleet with concurrent
// estimate traffic while /stats and /metrics are scraped mid-flight
// (torn reads surface under -race), then checks that the per-shard
// counters sum exactly to the fleet aggregation and that ?shard=i
// matches the aggregate's per-shard entry.
func TestFleetStatsAggregationConcurrent(t *testing.T) {
	fleet, ts := testFleetServer(t, false)
	const workers = 8
	const perWorker = 40

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				u := (w*perWorker + i) % 47
				v := (u + 1 + i%17) % 48
				if u == v {
					v = (v + 1) % 48
				}
				resp, err := ts.Client().Get(fmt.Sprintf("%s/estimate?u=%d&v=%d", ts.URL, u, v))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("estimate u=%d v=%d: status %d", u, v, resp.StatusCode)
					return
				}
			}
		}()
	}
	// Scrape both surfaces while the load runs: values are moving, so
	// only well-formedness is checked here.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var st shard.FleetStats
			getJSON(t, ts, "/stats", http.StatusOK, &st)
			scrapeMetrics(t, ts)
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var st shard.FleetStats
	getJSON(t, ts, "/stats", http.StatusOK, &st)
	if got := st.Intra + st.Cross; got != workers*perWorker {
		t.Fatalf("intra+cross = %d, want %d", got, workers*perWorker)
	}
	if len(st.PerShard) != fleet.K() {
		t.Fatalf("per_shard has %d entries, want %d", len(st.PerShard), fleet.K())
	}
	// Only intra estimates touch a shard engine; the per-shard endpoint
	// counters must sum exactly to the aggregate.
	var sumEstimates, sumRequests int64
	for _, ss := range st.PerShard {
		sumEstimates += ss.Engine.Endpoints[oracle.EndpointEstimate].Count
		for _, ep := range ss.Engine.Endpoints {
			sumRequests += ep.Count
		}
	}
	if sumEstimates != st.Intra {
		t.Fatalf("per-shard estimate counts sum to %d, fleet intra = %d", sumEstimates, st.Intra)
	}
	if sumRequests != st.Requests {
		t.Fatalf("per-shard request counts sum to %d, fleet requests = %d", sumRequests, st.Requests)
	}
	// ?shard=i narrows to the same engine the aggregate reported.
	for i := 0; i < fleet.K(); i++ {
		var es oracle.EngineStats
		getJSON(t, ts, fmt.Sprintf("/stats?shard=%d", i), http.StatusOK, &es)
		want := st.PerShard[i].Engine.Endpoints[oracle.EndpointEstimate].Count
		if got := es.Endpoints[oracle.EndpointEstimate].Count; got != want {
			t.Fatalf("shard %d: ?shard estimate count %d != aggregate %d", i, got, want)
		}
	}
}
